"""2-D surfaces: how the accelerator views memory.

"Domain-optimized accelerators may view memory in a significantly
different way than the general purpose CPU ... the GMA X3000 accesses
virtual memory via *surfaces*, which are two-dimensional blocks of memory.
Configuring surface information such as the tiling format is important for
achieving the best possible performance" (paper section 4.4).

A :class:`Surface` is a typed 2-D view over the shared virtual address
space.  All data movement goes through an *accessor* — either the
:class:`~repro.memory.address_space.AddressSpace` itself (the IA32
sequencer's demand-paged view) or a
:class:`~repro.memory.address_space.SequencerView` (an exo-sequencer's
TLB-translated view), so the same surface faults differently depending on
who touches it.  That is the behaviour ATR exists to service.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import MemorySystemError
from ..isa.types import DataType

#: Side of one square tile in the tiled layout (elements).
TILE = 4


class TileMode(enum.Enum):
    """Surface memory layouts."""

    LINEAR = "linear"
    TILED = "tiled"  # 4x4 element tiles, tiles row-major


@dataclass
class Surface:
    """A typed 2-D region of the shared virtual address space."""

    name: str
    base: int
    width: int
    height: int
    dtype: DataType
    pitch: int = 0  # elements per row; defaults to width (rounded for tiling)
    tiling: TileMode = TileMode.LINEAR

    def __post_init__(self):
        if self.width <= 0 or self.height <= 0:
            raise MemorySystemError(
                f"surface {self.name!r} has empty geometry "
                f"{self.width}x{self.height}")
        if self.pitch == 0:
            self.pitch = self.width
        if self.tiling is TileMode.TILED:
            if self.pitch % TILE:
                self.pitch += TILE - self.pitch % TILE
        if self.pitch < self.width:
            raise MemorySystemError(
                f"surface {self.name!r} pitch {self.pitch} < width {self.width}")

    # -- geometry ---------------------------------------------------------------

    @property
    def esize(self) -> int:
        return self.dtype.size

    @property
    def nbytes(self) -> int:
        rows = self.height
        if self.tiling is TileMode.TILED and rows % TILE:
            rows += TILE - rows % TILE
        return self.pitch * rows * self.esize

    @property
    def nelems(self) -> int:
        return self.width * self.height

    @classmethod
    def alloc(cls, space, name: str, width: int, height: int,
              dtype: DataType, pitch: int = 0,
              tiling: TileMode = TileMode.LINEAR, eager: bool = False) -> "Surface":
        """Allocate backing store in ``space`` and return the surface."""
        surf = cls(name=name, base=0, width=width, height=height,
                   dtype=dtype, pitch=pitch, tiling=tiling)
        surf.base = space.alloc(surf.nbytes, eager=eager)
        return surf

    def element_addr(self, x: int, y: int) -> int:
        """Virtual address of element (x, y) under this surface's layout."""
        if self.tiling is TileMode.LINEAR:
            return self.base + (y * self.pitch + x) * self.esize
        tiles_per_row = self.pitch // TILE
        tile_index = (y // TILE) * tiles_per_row + (x // TILE)
        offset = (y % TILE) * TILE + (x % TILE)
        return self.base + (tile_index * TILE * TILE + offset) * self.esize

    def element_addrs(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`element_addr` over coordinate arrays."""
        xs = np.asarray(xs, dtype=np.int64)
        ys = np.asarray(ys, dtype=np.int64)
        if self.tiling is TileMode.LINEAR:
            return self.base + (ys * self.pitch + xs) * self.esize
        tiles_per_row = self.pitch // TILE
        tile_index = (ys // TILE) * tiles_per_row + (xs // TILE)
        offset = (ys % TILE) * TILE + (xs % TILE)
        return self.base + (tile_index * TILE * TILE + offset) * self.esize

    # -- batched lane access (the gang engine's path) ----------------------------

    def read_elements(self, accessor, xs: np.ndarray,
                      ys: np.ndarray) -> np.ndarray:
        """Gather one element per (x, y) pair in a single batched read.

        ``accessor`` must expose ``gather`` (both
        :class:`~repro.memory.address_space.AddressSpace` and
        :class:`~repro.memory.address_space.SequencerView` do).  A
        translation miss raises before any data moves.
        """
        return accessor.gather(self.element_addrs(xs, ys),
                               self.dtype.np_dtype).astype(np.float64)

    def write_elements(self, accessor, xs: np.ndarray, ys: np.ndarray,
                       values: np.ndarray) -> None:
        """Scatter one element per (x, y) pair; duplicates resolve in
        flattened order, last writer wins."""
        typed = np.asarray(values).astype(self.dtype.np_dtype)
        accessor.scatter(self.element_addrs(xs, ys), typed)

    def read_linear_batch(self, accessor, indices: np.ndarray) -> np.ndarray:
        """Batched :meth:`read_linear` over flat row-major element indices."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (int(indices.min()) < 0
                             or int(indices.max()) >= self.nelems):
            raise MemorySystemError(
                f"linear access outside surface {self.name!r} "
                f"of {self.nelems} elements")
        return self.read_elements(accessor, indices % self.width,
                                  indices // self.width)

    def write_linear_batch(self, accessor, indices: np.ndarray,
                           values: np.ndarray) -> None:
        """Batched :meth:`write_linear` over flat row-major element indices."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (int(indices.min()) < 0
                             or int(indices.max()) >= self.nelems):
            raise MemorySystemError(
                f"linear access outside surface {self.name!r} "
                f"of {self.nelems} elements")
        self.write_elements(accessor, indices % self.width,
                            indices // self.width, values)

    # -- linear element access (ld/st) --------------------------------------------

    def read_linear(self, accessor, index: int, count: int) -> np.ndarray:
        """Read ``count`` elements starting at flat row-major ``index``."""
        self._check_linear(index, count)
        if self.tiling is TileMode.LINEAR and self.pitch == self.width:
            addr = self.base + index * self.esize
            return accessor.read_array(addr, count, self.dtype.np_dtype).astype(
                np.float64)
        out = np.empty(count, dtype=np.float64)
        for i in range(count):
            x, y = (index + i) % self.width, (index + i) // self.width
            out[i] = accessor.read_array(
                self.element_addr(x, y), 1, self.dtype.np_dtype)[0]
        return out

    def write_linear(self, accessor, index: int, values: np.ndarray) -> None:
        values = np.asarray(values)
        self._check_linear(index, values.size)
        typed = values.astype(self.dtype.np_dtype)
        if self.tiling is TileMode.LINEAR and self.pitch == self.width:
            accessor.write_array(self.base + index * self.esize, typed)
            return
        for i in range(values.size):
            x, y = (index + i) % self.width, (index + i) // self.width
            accessor.write_array(self.element_addr(x, y), typed[i : i + 1])

    def _check_linear(self, index: int, count: int) -> None:
        if index < 0 or index + count > self.nelems:
            raise MemorySystemError(
                f"linear access [{index}, {index + count}) outside surface "
                f"{self.name!r} of {self.nelems} elements")

    # -- block access (ldblk/stblk) --------------------------------------------------

    def read_block(self, accessor, x: int, y: int, w: int, h: int) -> np.ndarray:
        """Read a w x h block at (x, y), row-major, edge-clamped.

        Media filter hardware replicates border pixels when a block hangs
        off the surface edge; kernels rely on this for boundary taps.
        """
        out = np.empty(w * h, dtype=np.float64)
        for row in range(h):
            yy = min(max(y + row, 0), self.height - 1)
            out[row * w : (row + 1) * w] = self._read_row_clamped(
                accessor, x, yy, w)
        return out

    def _read_row_clamped(self, accessor, x: int, y: int, w: int) -> np.ndarray:
        x0 = min(max(x, 0), self.width - 1)
        x1 = min(max(x + w - 1, 0), self.width - 1)
        if self.tiling is TileMode.LINEAR:
            addr = self.element_addr(x0, y)
            row = accessor.read_array(addr, x1 - x0 + 1, self.dtype.np_dtype)
            row = row.astype(np.float64)
        else:
            row = np.empty(x1 - x0 + 1, dtype=np.float64)
            for i in range(x1 - x0 + 1):
                row[i] = accessor.read_array(
                    self.element_addr(x0 + i, y), 1, self.dtype.np_dtype)[0]
        cols = np.clip(np.arange(x, x + w), x0, x1) - x0
        return row[cols]

    def write_block(self, accessor, x: int, y: int, values: np.ndarray,
                    w: int, h: int) -> None:
        values = np.asarray(values, dtype=np.float64).reshape(h, w)
        if x < 0 or y < 0 or x + w > self.width or y + h > self.height:
            raise MemorySystemError(
                f"block store [{x},{y})+{w}x{h} outside surface {self.name!r} "
                f"({self.width}x{self.height})")
        typed = values.astype(self.dtype.np_dtype)
        for row in range(h):
            if self.tiling is TileMode.LINEAR:
                accessor.write_array(self.element_addr(x, y + row), typed[row])
            else:
                for col in range(w):
                    accessor.write_array(
                        self.element_addr(x + col, y + row),
                        typed[row, col : col + 1])

    # -- sampling (fixed-function unit) ------------------------------------------------

    def sample_bilinear(self, accessor, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Bilinear samples at fractional coordinates, edge-clamped.

        When the sampled footprint is compact (the common case: a SIMD
        batch of neighbouring coordinates), the four neighbourhoods are
        gathered from a single block read instead of 4N element reads —
        the sampler hardware's cache, in effect.
        """
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        x0 = np.clip(np.floor(xs).astype(int), 0, self.width - 1)
        y0 = np.clip(np.floor(ys).astype(int), 0, self.height - 1)
        x1 = np.minimum(x0 + 1, self.width - 1)
        y1 = np.minimum(y0 + 1, self.height - 1)
        fx = np.clip(xs - x0, 0.0, 1.0)
        fy = np.clip(ys - y0, 0.0, 1.0)

        bx0, bx1 = int(x0.min()), int(x1.max())
        by0, by1 = int(y0.min()), int(y1.max())
        bw, bh = bx1 - bx0 + 1, by1 - by0 + 1
        if bw * bh <= max(64, 8 * xs.size) and self.tiling is TileMode.LINEAR:
            box = self.read_block(accessor, bx0, by0, bw, bh).reshape(bh, bw)
            p00 = box[y0 - by0, x0 - bx0]
            p10 = box[y0 - by0, x1 - bx0]
            p01 = box[y1 - by0, x0 - bx0]
            p11 = box[y1 - by0, x1 - bx0]
        else:
            p00 = np.array([self._elem(accessor, x0[i], y0[i])
                            for i in range(xs.size)])
            p10 = np.array([self._elem(accessor, x1[i], y0[i])
                            for i in range(xs.size)])
            p01 = np.array([self._elem(accessor, x0[i], y1[i])
                            for i in range(xs.size)])
            p11 = np.array([self._elem(accessor, x1[i], y1[i])
                            for i in range(xs.size)])
        top = p00 + (p10 - p00) * fx
        bot = p01 + (p11 - p01) * fx
        return top + (bot - top) * fy

    def _elem(self, accessor, x: int, y: int) -> float:
        return float(accessor.read_array(
            self.element_addr(x, y), 1, self.dtype.np_dtype)[0])

    # -- whole-surface helpers -------------------------------------------------------

    def upload(self, accessor, image: np.ndarray) -> None:
        """Write a height x width array into the surface."""
        image = np.asarray(image)
        if image.shape != (self.height, self.width):
            raise MemorySystemError(
                f"image shape {image.shape} != surface "
                f"({self.height}, {self.width})")
        for y in range(self.height):
            self.write_block(accessor, 0, y, image[y], self.width, 1)

    def download(self, accessor) -> np.ndarray:
        """Read the whole surface as a height x width float64 array."""
        out = np.empty((self.height, self.width), dtype=np.float64)
        for y in range(self.height):
            out[y] = self.read_block(accessor, 0, y, self.width, 1)
        return out
