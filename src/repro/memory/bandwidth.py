"""Data-movement cost model: the rates the paper states or implies.

All rates are in bytes/second; conversion helpers return seconds.  The
defaults come straight from the evaluation section:

* 3.1 GB/s — "an aggressive data copy rate using an SSE-enhanced memory
  copy routine when copying from a cacheable memory source to a
  destination region marked as uncacheable, write-combining memory"
  (section 5.2, the Data Copy configuration);
* 2.0 GB/s — the paper's example of "a system where the cache flush
  operation has not been optimized" (the flush-ablation experiment);
* 8.0 GB/s — an optimized flush writeback rate (dirty lines streamed back
  over the FSB), used for the default Non-CC configuration;
* 10.7 GB/s — aggregate memory bandwidth of the 965G chipset's dual
  channel DDR2-667 memory, shared by CPU and GMA.
"""

from __future__ import annotations

from dataclasses import dataclass

GB = 1e9


@dataclass(frozen=True)
class BandwidthModel:
    """Bytes-per-second rates for every data-movement path we cost."""

    copy_rate: float = 3.1 * GB  # explicit CPU->WC copy (Data Copy config)
    flush_rate: float = 8.0 * GB  # optimized cache flush writeback
    unoptimized_flush_rate: float = 2.0 * GB  # section 5.2's slow flush
    memory_bandwidth: float = 10.7 * GB  # shared main-memory bandwidth

    def copy_seconds(self, nbytes: int) -> float:
        """Time to copy ``nbytes`` between address spaces (one direction)."""
        return nbytes / self.copy_rate

    def flush_seconds(self, nbytes: int, optimized: bool = True) -> float:
        rate = self.flush_rate if optimized else self.unoptimized_flush_rate
        return nbytes / rate

    def stream_seconds(self, nbytes: int) -> float:
        """Time for ``nbytes`` of demand traffic at full memory bandwidth."""
        return nbytes / self.memory_bandwidth
