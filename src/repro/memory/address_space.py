"""The shared virtual address space and per-sequencer translated views.

One :class:`AddressSpace` models the single OS process image of an EXOCHI
application: a bump allocator over virtual pages, an IA32 page table, and
demand paging (the OS maps frames on first touch, which is exactly the
fault that ATR proxies for the exo-sequencers).

A :class:`SequencerView` is how a *non-OS-managed* sequencer sees that
space: every access translates through the view's private TLB, and a miss
raises :class:`~repro.errors.TlbMiss` for the exoskeleton to service (the
view itself never walks the IA32 tables — it architecturally cannot, which
is the entire reason ATR exists).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..errors import MemorySystemError, TlbMiss, TranslationFault
from .gtt import gtt_pfn, gtt_pfn_array, gtt_valid, gtt_valid_array
from .paging import (
    IA32PageTable,
    PTE_CACHE_DISABLE,
    PTE_PRESENT,
    PTE_WRITABLE,
    pte_pfn,
)
from .physical import PAGE_SHIFT, PAGE_SIZE, PhysicalMemory
from .tlb import Tlb

#: Base of the heap region handed out by :meth:`AddressSpace.alloc`.
HEAP_BASE = 0x1000_0000


class AddressSpace:
    """A process virtual address space shared by all sequencers."""

    def __init__(self, physical: Optional[PhysicalMemory] = None,
                 demand_paging: bool = True):
        self.physical = physical or PhysicalMemory()
        self.page_table = IA32PageTable()
        self.demand_paging = demand_paging
        self._next_vaddr = HEAP_BASE
        self._allocations: Dict[int, int] = {}  # vaddr -> size
        self.faults_serviced = 0
        #: Registered device views whose TLB/GTT entries must be shot down
        #: whenever a translation this space owns goes away or weakens.
        self._views: List["SequencerView"] = []
        self._shootdown_listeners: List[Callable] = []
        # Several drain threads can demand-fault concurrently (serving
        # slots, fault proxies for worker processes); frame grab + PTE
        # install must be one atomic step or two threads double-map.
        self._fault_lock = threading.Lock()
        self.shootdowns = 0  # invalidation broadcasts issued
        #: One record per broadcast, consumed by
        #: :func:`repro.perf.trace.shootdown_trace_events`.
        self.shootdown_events: List[dict] = []

    # -- device views (the shootdown domain) ------------------------------------

    def register_view(self, view: "SequencerView") -> None:
        """Join a sequencer view to this space's shootdown domain."""
        if view not in self._views:
            self._views.append(view)

    def unregister_view(self, view: "SequencerView") -> None:
        if view in self._views:
            self._views.remove(view)

    def add_shootdown_listener(self, listener: Callable) -> None:
        """Register ``listener(vpns, reason)`` to observe every broadcast
        (ATR uses this to drop stale shared-cache entries and count)."""
        if listener not in self._shootdown_listeners:
            self._shootdown_listeners.append(listener)

    def _shootdown(self, vpns: Sequence[int], reason: str) -> None:
        """Broadcast an invalidation for ``vpns`` to every registered view.

        This is the coherence protocol the shared virtual address space
        needs once pages can be freed or remapped while exo-sequencers
        hold translations: without it, a stale TLB/GTT entry on any device
        silently resolves to a recycled physical frame.
        """
        vpns = list(vpns)
        if not vpns:
            return
        self.shootdowns += 1
        for view in self._views:
            hit = False
            for vpn in vpns:
                if vpn in view.tlb or vpn in view.gtt:
                    hit = True
                view.tlb.invalidate(vpn)
                view.gtt.pop(vpn, None)
            # the vectorized page->frame snapshot caches the same
            # translations, so it is part of the shootdown domain too
            view.invalidate_vector_cache()
            if hit:
                view.shootdowns_received += 1
        for listener in self._shootdown_listeners:
            listener(vpns, reason)
        self.shootdown_events.append({
            "seq": self.shootdowns,
            "reason": reason,
            "pages": len(vpns),
            "views": len(self._views),
        })

    # -- allocation -----------------------------------------------------------

    def alloc(self, nbytes: int, eager: bool = False) -> int:
        """Reserve ``nbytes`` of virtual space; returns the base address.

        With ``eager`` the pages are mapped immediately; otherwise the
        first touch takes a page fault (serviced by :meth:`handle_fault`,
        or by ATR proxy execution when the first touch is from an
        exo-sequencer).
        """
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        base = self._next_vaddr
        npages = -(-nbytes // PAGE_SIZE)
        self._next_vaddr += npages * PAGE_SIZE
        self._allocations[base] = nbytes
        if eager:
            for i in range(npages):
                self.handle_fault(base + i * PAGE_SIZE, write=True)
        return base

    def free(self, vaddr: int) -> None:
        nbytes = self._allocations.pop(vaddr, None)
        if nbytes is None:
            raise MemorySystemError(f"no allocation at {vaddr:#x}")
        npages = -(-nbytes // PAGE_SIZE)
        unmapped = []
        for i in range(npages):
            vpn = (vaddr >> PAGE_SHIFT) + i
            if self.page_table.entry(vpn):
                pfn = self.page_table.walk(vpn).pfn
                self.page_table.unmap(vpn)
                self.physical.free_frame(pfn)
                unmapped.append(vpn)
        self._shootdown(unmapped, "free")

    def protect(self, vaddr: int, writable: bool) -> int:
        """Change the protection of an allocation's mapped pages.

        Weakening a mapping (dropping write permission) must reach every
        device translation too, so the change broadcasts a shootdown just
        like :meth:`free`; the next device access re-faults through ATR,
        which enforces the new bits.  Returns the number of pages changed.
        """
        nbytes = self._allocations.get(vaddr)
        if nbytes is None:
            raise MemorySystemError(f"no allocation at {vaddr:#x}")
        npages = -(-nbytes // PAGE_SIZE)
        changed = []
        for i in range(npages):
            vpn = (vaddr >> PAGE_SHIFT) + i
            pte = self.page_table.entry(vpn)
            if pte & PTE_PRESENT:
                self.page_table.map(
                    vpn, pte_pfn(pte), writable=writable,
                    cache_disable=bool(pte & PTE_CACHE_DISABLE))
                changed.append(vpn)
        self._shootdown(changed, "protect")
        return len(changed)

    def allocation_size(self, vaddr: int) -> Optional[int]:
        return self._allocations.get(vaddr)

    # -- faults (the OS's demand-paging handler) --------------------------------

    def handle_fault(self, vaddr: int, write: bool = False) -> None:
        """The OS page-fault handler: back the faulting page with a frame.

        ATR's proxy execution lands here: the IA32 sequencer touches the
        address "on behalf of the exo-sequencer", which drives this exact
        path.
        """
        vpn = vaddr >> PAGE_SHIFT
        with self._fault_lock:
            if self.page_table.entry(vpn):
                return  # raced: already mapped
            pfn = self.physical.alloc_frame()
            self.page_table.map(vpn, pfn, writable=True)
            self.faults_serviced += 1

    # -- cross-process mirroring -------------------------------------------------

    def pte_snapshot(self, vpns: Sequence[int]) -> Dict[int, int]:
        """The raw present PTEs for ``vpns`` — what ships to a worker
        process so its mirror page table can translate without a fault
        round trip per page."""
        out: Dict[int, int] = {}
        for vpn in vpns:
            pte = self.page_table.entry(vpn)
            if pte & PTE_PRESENT:
                out[vpn] = pte
        return out

    def install_pte(self, vpn: int, pte: int) -> None:
        """Install a raw PTE received from the authoritative space.

        The mirror side of cross-process paging: the parent resolves the
        fault against the real allocator, then the worker installs the
        resulting entry verbatim (same frame — the frames are shared
        memory, so identical PFNs address identical bytes).
        """
        if not pte & PTE_PRESENT:
            raise MemorySystemError(
                f"cannot install non-present PTE for vpn {vpn:#x}")
        self.page_table.map(
            vpn, pte_pfn(pte),
            writable=bool(pte & PTE_WRITABLE),
            cache_disable=bool(pte & PTE_CACHE_DISABLE))

    def invalidate_mappings(self, vpns: Sequence[int],
                            reason: str = "remote") -> int:
        """Receiver side of a cross-process shootdown: drop the mirror's
        PTEs for ``vpns`` *without freeing frames* (the owner already did)
        and rebroadcast to locally registered views and listeners, so the
        worker's TLBs, GTT mirrors and vector snapshots all invalidate.
        Returns the number of PTEs dropped.
        """
        dropped = 0
        for vpn in vpns:
            if self.page_table.entry(vpn) & PTE_PRESENT:
                self.page_table.unmap(vpn)
                dropped += 1
        self._shootdown(list(vpns), reason)
        return dropped

    # -- translation ------------------------------------------------------------

    def translate(self, vaddr: int, write: bool = False) -> int:
        """Virtual to physical, walking the IA32 tables.

        Demand paging services translation faults transparently, the way
        the OS does for the OS-managed sequencer.
        """
        vpn = vaddr >> PAGE_SHIFT
        try:
            entry = self.page_table.walk(vpn, write=write)
        except TranslationFault:
            if not self.demand_paging:
                raise
            self.handle_fault(vaddr, write=write)
            entry = self.page_table.walk(vpn, write=write)
        return (entry.pfn << PAGE_SHIFT) | (vaddr & (PAGE_SIZE - 1))

    # -- byte access (the IA32 sequencer's view) ----------------------------------

    def read_bytes(self, vaddr: int, count: int) -> np.ndarray:
        out = np.empty(count, dtype=np.uint8)
        done = 0
        while done < count:
            chunk = min(count - done, PAGE_SIZE - ((vaddr + done) & (PAGE_SIZE - 1)))
            paddr = self.translate(vaddr + done)
            out[done : done + chunk] = self.physical.read(paddr, chunk)
            done += chunk
        return out

    def write_bytes(self, vaddr: int, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.uint8)
        done = 0
        while done < data.size:
            chunk = min(data.size - done,
                        PAGE_SIZE - ((vaddr + done) & (PAGE_SIZE - 1)))
            paddr = self.translate(vaddr + done, write=True)
            self.physical.write(paddr, data[done : done + chunk])
            done += chunk

    def read_array(self, vaddr: int, count: int, dtype: np.dtype) -> np.ndarray:
        raw = self.read_bytes(vaddr, count * np.dtype(dtype).itemsize)
        return raw.view(dtype)[:count].copy()

    def write_array(self, vaddr: int, values: np.ndarray) -> None:
        self.write_bytes(vaddr, np.ascontiguousarray(values).view(np.uint8))

    # -- batched element access --------------------------------------------------

    def _translate_array(self, vaddrs: np.ndarray, itemsize: int,
                         write: bool) -> np.ndarray:
        """Page-wise vectorized translation through the IA32 tables.

        Walks each *distinct* page once (demand paging, A/D bits and
        protection checks all behave exactly as :meth:`translate`), then
        applies the page->frame map to the whole batch with numpy.
        """
        vaddrs = np.asarray(vaddrs, dtype=np.int64)
        if ((vaddrs & (PAGE_SIZE - 1)) + itemsize > PAGE_SIZE).any():
            raise MemorySystemError(
                "batched element access may not cross a page boundary")
        vpns = vaddrs >> PAGE_SHIFT
        uniq, inverse = np.unique(vpns, return_inverse=True)
        frames = np.empty(uniq.size, dtype=np.int64)
        for i, vpn in enumerate(uniq):
            paddr = self.translate(int(vpn) << PAGE_SHIFT, write=write)
            frames[i] = paddr >> PAGE_SHIFT
        return ((frames[inverse].reshape(vaddrs.shape) << PAGE_SHIFT)
                | (vaddrs & (PAGE_SIZE - 1)))

    def gather(self, vaddrs: np.ndarray, dtype: np.dtype) -> np.ndarray:
        """Read one ``dtype`` element at each virtual address."""
        dtype = np.dtype(dtype)
        paddrs = self._translate_array(vaddrs, dtype.itemsize, write=False)
        return self.physical.gather(paddrs, dtype)

    def scatter(self, vaddrs: np.ndarray, values: np.ndarray) -> None:
        """Write one typed element at each virtual address (last writer
        wins between duplicate addresses, in flattened order)."""
        values = np.asarray(values)
        paddrs = self._translate_array(vaddrs, values.dtype.itemsize,
                                       write=True)
        self.physical.scatter(paddrs, values)


class SequencerView:
    """An exo-sequencer's window onto the shared virtual address space.

    All translation goes through ``tlb`` (GTT-format entries); a miss
    raises :class:`~repro.errors.TlbMiss`.  The exoskeleton catches that,
    runs ATR proxy execution on the IA32 sequencer, and retries.
    """

    def __init__(self, space: AddressSpace, tlb: Optional[Tlb] = None,
                 name: str = "exo"):
        self.space = space
        self.name = name
        self.tlb = tlb or Tlb(capacity=32, name=name)
        #: The device's own page table ("the industry standard GPU
        #: driver-oriented page table format").  ATR fills it with
        #: transcoded entries; later TLB misses on the same page refill
        #: from here with a hardware walk — no proxy round trip.
        self.gtt: dict = {}
        self.gtt_walks = 0
        self.shootdowns_received = 0
        #: Batches resolved end-to-end by :meth:`translate_batch` (counts
        #: distinct pages, not lanes).
        self.batched_translations = 0
        # lazily built sorted (vpn, entry) snapshot of ``gtt`` for the
        # vectorized path; rebuilt when the dict length changes and on
        # explicit invalidation (shootdowns can swap K pages for K other
        # pages without changing the length, so the flag is load-bearing)
        self._gtt_vec_vpns: Optional[np.ndarray] = None
        self._gtt_vec_entries: Optional[np.ndarray] = None
        self._gtt_vec_len = -1
        # joining the space's shootdown domain is what keeps this view's
        # cached translations coherent with frees/remaps on the IA32 side
        space.register_view(self)

    def translate(self, vaddr: int, write: bool = False) -> int:
        vpn = vaddr >> PAGE_SHIFT
        try:
            entry = self.tlb.lookup(vpn)
        except TlbMiss:
            entry = self.gtt.get(vpn)
            if entry is None:
                raise  # genuinely unmapped: ATR proxy required
            self.gtt_walks += 1
            self.tlb.insert(vpn, entry)
        if not gtt_valid(entry):
            raise TlbMiss(vaddr, sequencer=self.name)
        return (gtt_pfn(entry) << PAGE_SHIFT) | (vaddr & (PAGE_SIZE - 1))

    # -- vectorized translation --------------------------------------------------

    def invalidate_vector_cache(self) -> None:
        """Drop the sorted GTT snapshot (shootdown coherence hook)."""
        self._gtt_vec_vpns = None
        self._gtt_vec_entries = None
        self._gtt_vec_len = -1
        # the TLB's own vector snapshot keys off the same translations
        self.tlb._vec_vpns = None

    def _gtt_snapshot(self):
        if self._gtt_vec_vpns is None or self._gtt_vec_len != len(self.gtt):
            count = len(self.gtt)
            vpns = np.fromiter(self.gtt.keys(), dtype=np.int64, count=count)
            entries = np.fromiter(self.gtt.values(), dtype=np.int64,
                                  count=count)
            order = np.argsort(vpns)
            self._gtt_vec_vpns = vpns[order]
            self._gtt_vec_entries = entries[order]
            self._gtt_vec_len = count
        return self._gtt_vec_vpns, self._gtt_vec_entries

    def translate_batch(self, vaddrs: np.ndarray,
                        write: bool = False) -> np.ndarray:
        """Translate a whole batch of virtual addresses in one operation.

        The fast path probes the TLB's sorted vector snapshot, then
        refills the missing subset from the GTT snapshot (a batched
        hardware walk).  Pages resident in neither raise one
        :class:`TlbMiss` carrying *every* missing page, page-aligned —
        the same shape :meth:`prepare_range` raises — so the exoskeleton
        coalesces them into a single ATR batched proxy round trip.  The
        raise happens before any counter moves: a missed batch is
        side-effect free.

        Unlike the scalar :meth:`translate`, GTT refills do not insert
        into the TLB (a 32-wide batch would churn the whole LRU chain);
        the differential contract covers architectural state and the
        TLB hit/miss split is engine-specific.
        """
        vaddrs = np.asarray(vaddrs, dtype=np.int64)
        shape = vaddrs.shape
        flat = vaddrs.reshape(-1)
        vpns = flat >> PAGE_SHIFT
        uniq, inverse = np.unique(vpns, return_inverse=True)
        entries, hit = self.tlb.translate_batch(uniq << PAGE_SHIFT,
                                                write=write)
        if not hit.all():
            miss_idx = np.nonzero(~hit)[0]
            gtt_vpns, gtt_entries = self._gtt_snapshot()
            if gtt_vpns.size:
                pos = np.searchsorted(gtt_vpns, uniq[miss_idx])
                pos_clipped = np.minimum(pos, gtt_vpns.size - 1)
                found = gtt_vpns[pos_clipped] == uniq[miss_idx]
                entries[miss_idx[found]] = gtt_entries[pos_clipped[found]]
                hit[miss_idx[found]] = True
            else:
                found = np.zeros(miss_idx.size, dtype=bool)
            walked = int(found.sum())
        else:
            walked = 0
        resolved = hit & gtt_valid_array(entries)
        if not resolved.all():
            missing = uniq[~resolved] << PAGE_SHIFT
            raise TlbMiss(int(missing[0]), sequencer=self.name,
                          vaddrs=tuple(int(m) for m in missing))
        self.gtt_walks += walked
        self.batched_translations += int(uniq.size)
        pfns = gtt_pfn_array(entries)
        return ((pfns[inverse] << PAGE_SHIFT)
                | (flat & (PAGE_SIZE - 1))).reshape(shape)

    def gather(self, vaddrs: np.ndarray, dtype: np.dtype) -> np.ndarray:
        """Batched typed read through the vectorized translation path."""
        dtype = np.dtype(dtype)
        vaddrs = np.asarray(vaddrs, dtype=np.int64)
        if ((vaddrs & (PAGE_SIZE - 1)) + dtype.itemsize > PAGE_SIZE).any():
            raise MemorySystemError(
                "batched element access may not cross a page boundary")
        paddrs = self.translate_batch(vaddrs)
        return self.space.physical.gather(paddrs, dtype)

    def scatter(self, vaddrs: np.ndarray, values: np.ndarray) -> None:
        """Batched typed write; duplicate addresses resolve in flattened
        (queue) order, last writer wins."""
        values = np.asarray(values)
        vaddrs = np.asarray(vaddrs, dtype=np.int64)
        if ((vaddrs & (PAGE_SIZE - 1))
                + values.dtype.itemsize > PAGE_SIZE).any():
            raise MemorySystemError(
                "batched element access may not cross a page boundary")
        paddrs = self.translate_batch(vaddrs, write=True)
        self.space.physical.scatter(paddrs, values)

    def prepare_range(self, vaddr: int, count: int, write: bool = False) -> list:
        """Translate every page an access will touch; returns paddr chunks.

        Translating up front keeps accesses atomic with respect to TLB
        misses: either the whole range is mapped, or :class:`TlbMiss` is
        raised before any byte moves.  The raised miss carries *every*
        missing page of the range, so ATR can coalesce the faults into one
        batched proxy round trip instead of one per page.
        """
        chunks = []
        missing: list = []
        done = 0
        while done < count:
            size = min(count - done, PAGE_SIZE - ((vaddr + done) & (PAGE_SIZE - 1)))
            try:
                paddr = self.translate(vaddr + done, write=write)
            except TlbMiss:
                missing.append(vaddr + done)
                paddr = None
            chunks.append((paddr, size))
            done += size
        if missing:
            raise TlbMiss(missing[0], sequencer=self.name,
                          vaddrs=tuple(missing))
        return chunks

    def read_bytes(self, vaddr: int, count: int) -> np.ndarray:
        chunks = self.prepare_range(vaddr, count)
        out = np.empty(count, dtype=np.uint8)
        done = 0
        for paddr, size in chunks:
            out[done : done + size] = self.space.physical.read(paddr, size)
            done += size
        return out

    def write_bytes(self, vaddr: int, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.uint8)
        chunks = self.prepare_range(vaddr, data.size, write=True)
        done = 0
        for paddr, size in chunks:
            self.space.physical.write(paddr, data[done : done + size])
            done += size

    def read_array(self, vaddr: int, count: int, dtype: np.dtype) -> np.ndarray:
        raw = self.read_bytes(vaddr, count * np.dtype(dtype).itemsize)
        return raw.view(dtype)[:count].copy()

    def write_array(self, vaddr: int, values: np.ndarray) -> None:
        self.write_bytes(vaddr, np.ascontiguousarray(values).view(np.uint8))
