"""Per-sequencer translation lookaside buffers."""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..errors import TlbMiss
from .physical import PAGE_SHIFT


class Tlb:
    """A small fully-associative TLB with LRU replacement.

    Entries are opaque integers in whatever page-table-entry format the
    owning sequencer understands (IA32 PTEs for the CPU, GTT entries for
    the GMA) — the TLB itself never interprets them beyond validity.
    """

    def __init__(self, capacity: int = 64, name: str = "tlb"):
        if capacity < 1:
            raise ValueError("TLB capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, vpn: int) -> int:
        """Return the cached entry for ``vpn`` or raise :class:`TlbMiss`."""
        entry = self._entries.get(vpn)
        if entry is None:
            self.misses += 1
            raise TlbMiss(vpn << PAGE_SHIFT, sequencer=self.name)
        self._entries.move_to_end(vpn)
        self.hits += 1
        return entry

    def probe(self, vpn: int) -> Optional[int]:
        """Non-faulting lookup; does not count as an access."""
        return self._entries.get(vpn)

    def insert(self, vpn: int, entry: int) -> None:
        if vpn in self._entries:
            self._entries.move_to_end(vpn)
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[vpn] = entry

    def invalidate(self, vpn: Optional[int] = None) -> None:
        """Drop one entry, or all of them when ``vpn`` is None."""
        if vpn is None:
            self._entries.clear()
        else:
            self._entries.pop(vpn, None)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries
