"""Per-sequencer translation lookaside buffers."""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from ..errors import TlbMiss
from .physical import PAGE_SHIFT


class Tlb:
    """A small fully-associative TLB with LRU replacement.

    Entries are opaque integers in whatever page-table-entry format the
    owning sequencer understands (IA32 PTEs for the CPU, GTT entries for
    the GMA) — the TLB itself never interprets them beyond validity.

    Two fast paths sit in front of the LRU dict:

    * a one-entry **last-page MRU** — consecutive accesses to the same
      page (the common scalar-interpreter pattern: every lane of a
      16-wide access, then the next instruction on the same surface
      row) skip the dict probe and the ``move_to_end`` reorder.  An MRU
      hit still counts as a TLB hit.
    * a lazily built **sorted vector snapshot** of all resident entries,
      consumed by :meth:`translate_batch` to resolve a whole batch of
      addresses with one ``searchsorted`` instead of one dict probe per
      lane.  The snapshot is invalidated by any insert or invalidate.
    """

    def __init__(self, capacity: int = 64, name: str = "tlb"):
        if capacity < 1:
            raise ValueError("TLB capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Hits absorbed by the one-entry MRU (a subset of ``hits``).
        self.mru_hits = 0
        #: Pages served by the vectorized :meth:`translate_batch` path.
        self.vector_hits = 0
        self._mru_vpn = -1
        self._mru_entry = 0
        self._vec_vpns: Optional[np.ndarray] = None
        self._vec_entries: Optional[np.ndarray] = None

    def lookup(self, vpn: int) -> int:
        """Return the cached entry for ``vpn`` or raise :class:`TlbMiss`."""
        if vpn == self._mru_vpn:
            self.hits += 1
            self.mru_hits += 1
            return self._mru_entry
        entry = self._entries.get(vpn)
        if entry is None:
            self.misses += 1
            raise TlbMiss(vpn << PAGE_SHIFT, sequencer=self.name)
        self._entries.move_to_end(vpn)
        self.hits += 1
        self._mru_vpn = vpn
        self._mru_entry = entry
        return entry

    def probe(self, vpn: int) -> Optional[int]:
        """Non-faulting lookup; does not count as an access."""
        return self._entries.get(vpn)

    def insert(self, vpn: int, entry: int) -> None:
        if vpn in self._entries:
            self._entries.move_to_end(vpn)
        elif len(self._entries) >= self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            if evicted == self._mru_vpn:
                self._mru_vpn = -1
        self._entries[vpn] = entry
        self._mru_vpn = vpn
        self._mru_entry = entry
        self._vec_vpns = None

    def invalidate(self, vpn: Optional[int] = None) -> None:
        """Drop one entry, or all of them when ``vpn`` is None."""
        if vpn is None:
            self._entries.clear()
            self._mru_vpn = -1
        else:
            self._entries.pop(vpn, None)
            if vpn == self._mru_vpn:
                self._mru_vpn = -1
        self._vec_vpns = None

    # -- vectorized translation -------------------------------------------------

    def _vector_snapshot(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._vec_vpns is None:
            count = len(self._entries)
            vpns = np.fromiter(self._entries.keys(), dtype=np.int64,
                               count=count)
            entries = np.fromiter(self._entries.values(), dtype=np.int64,
                                  count=count)
            order = np.argsort(vpns)
            self._vec_vpns = vpns[order]
            self._vec_entries = entries[order]
        return self._vec_vpns, self._vec_entries

    def translate_batch(self, vaddrs: np.ndarray,
                        write: bool = False) -> Tuple[np.ndarray, np.ndarray]:
        """Resolve a batch of virtual addresses against resident entries.

        Returns ``(entries, hit)`` arrays shaped like ``vaddrs``: for
        each address the cached (opaque) entry of its page, and whether
        the page was resident.  Missing pages get entry 0 and are the
        caller's problem — the view falls back to its GTT and ultimately
        to the ATR batched proxy round trip.

        Unlike :meth:`lookup` this neither reorders the LRU chain nor
        counts ``hits``/``misses``: it is the gang engine's wide probe,
        architecturally one access, and its accounting is the separate
        ``vector_hits`` counter.  ``write`` is accepted for signature
        parity with the view-level translate; entries are opaque here so
        permission checks happen in the consumer.
        """
        vaddrs = np.asarray(vaddrs, dtype=np.int64)
        vpns = vaddrs >> PAGE_SHIFT
        if not self._entries:
            return (np.zeros(vaddrs.shape, dtype=np.int64),
                    np.zeros(vaddrs.shape, dtype=bool))
        snap_vpns, snap_entries = self._vector_snapshot()
        pos = np.searchsorted(snap_vpns, vpns)
        pos_clipped = np.minimum(pos, snap_vpns.size - 1)
        hit = snap_vpns[pos_clipped] == vpns
        entries = np.where(hit, snap_entries[pos_clipped], 0)
        self.vector_hits += int(hit.sum())
        return entries, hit

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries
