"""Cache-flush scheduling policies (paper section 5.2).

When the IA32 shred hands a working set to exo-sequencer shreds without
cache coherence, the dirty lines must reach memory before the consuming
shred launches.  The paper contrasts two policies:

* **up-front** — flush the whole input before spawning any shred.  With an
  unoptimized 2 GB/s flush this drops LinearFilter from ~CC-level speedup
  to 3.15X.
* **interleaved** — flush only the first few shreds' data up front ("the
  initial 32 exo-sequencer shreds ... access less than 1% of the total
  input data"), then overlap the remaining flush with execution; this
  recovers performance "very close to a cache-coherent shared virtual
  memory configuration".

Both are *timing* policies: they take the dirty footprint and the
accelerator's execution profile and return how much flush time is exposed
(not overlapped with useful accelerator work).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .bandwidth import BandwidthModel


class FlushPolicy(enum.Enum):
    UPFRONT = "upfront"
    INTERLEAVED = "interleaved"


@dataclass(frozen=True)
class FlushPlan:
    """Result of scheduling a flush against accelerator execution."""

    total_flush_seconds: float
    exposed_seconds: float  # serialized before/around accelerator work
    overlapped_seconds: float

    @property
    def hidden_fraction(self) -> float:
        if self.total_flush_seconds == 0:
            return 1.0
        return self.overlapped_seconds / self.total_flush_seconds


def schedule_flush(policy: FlushPolicy, dirty_bytes: int,
                   accel_busy_seconds: float, num_shreds: int,
                   concurrent_shreds: int,
                   bandwidth: BandwidthModel,
                   optimized: bool = True) -> FlushPlan:
    """Compute exposed flush time under the given policy.

    ``concurrent_shreds`` is how many shreds the device runs at once (32
    for the GMA X3000): the interleaved policy must flush that first wave's
    footprint before anything launches, and can overlap the rest.
    """
    total = bandwidth.flush_seconds(dirty_bytes, optimized=optimized)
    if dirty_bytes == 0 or num_shreds == 0:
        return FlushPlan(0.0, 0.0, 0.0)
    if policy is FlushPolicy.UPFRONT:
        return FlushPlan(total, total, 0.0)
    first_wave = min(concurrent_shreds, num_shreds) / num_shreds
    upfront = total * first_wave
    remaining = total - upfront
    overlapped = min(remaining, accel_busy_seconds)
    exposed = upfront + (remaining - overlapped)
    return FlushPlan(total, exposed, overlapped)
