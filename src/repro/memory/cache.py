"""Write-back cache model with dirty-line tracking and flush accounting.

The functional simulator keeps data coherent (it is one Python process),
so the cache model's job is twofold:

* **timing** — count the dirty bytes a flush writes back, which the
  bandwidth model turns into time (Figure 8's Non-CC configuration);
* **protocol checking** — in strict mode, detect reads of lines another
  sequencer holds dirty, which on real non-coherent hardware would return
  stale data (raises :class:`~repro.errors.CoherenceViolation`).
"""

from __future__ import annotations

from typing import Dict, Set

from ..errors import CoherenceViolation

LINE_SIZE = 64


class WritebackCache:
    """Dirty-line tracking for one sequencer's cache."""

    def __init__(self, name: str, line_size: int = LINE_SIZE):
        if line_size < 1:
            raise ValueError("line size must be positive")
        self.name = name
        self.line_size = line_size
        self._dirty: Set[int] = set()
        self.bytes_flushed = 0
        self.flush_count = 0

    def _lines(self, vaddr: int, count: int):
        first = vaddr // self.line_size
        last = (vaddr + max(count, 1) - 1) // self.line_size
        return range(first, last + 1)

    def note_write(self, vaddr: int, count: int) -> None:
        self._dirty.update(self._lines(vaddr, count))

    @property
    def dirty_bytes(self) -> int:
        return len(self._dirty) * self.line_size

    def dirty_in_range(self, vaddr: int, count: int) -> bool:
        return any(line in self._dirty for line in self._lines(vaddr, count))

    def flush(self) -> int:
        """Write back everything; returns the bytes written back."""
        flushed = self.dirty_bytes
        self._dirty.clear()
        self.bytes_flushed += flushed
        self.flush_count += 1
        return flushed

    def flush_range(self, vaddr: int, count: int) -> int:
        """Write back only lines intersecting the range (selective flush,
        the basis of the paper's interleaved-flushing optimization)."""
        lines = set(self._lines(vaddr, count)) & self._dirty
        self._dirty -= lines
        flushed = len(lines) * self.line_size
        self.bytes_flushed += flushed
        if lines:
            self.flush_count += 1
        return flushed


class CoherencePoint:
    """The set of caches between sequencers, plus the coherence mode.

    ``coherent=True`` models the CC Shared configuration: reads always see
    the latest data and no flushes are required.  ``coherent=False`` is
    Non-CC Shared: flushes are required for visibility, and in strict mode
    a missing flush is an error rather than silent staleness.
    """

    def __init__(self, coherent: bool, strict: bool = False):
        self.coherent = coherent
        self.strict = strict
        self._caches: Dict[str, WritebackCache] = {}

    def cache(self, owner: str) -> WritebackCache:
        if owner not in self._caches:
            self._caches[owner] = WritebackCache(owner)
        return self._caches[owner]

    def note_write(self, owner: str, vaddr: int, count: int) -> None:
        if not self.coherent:
            self.cache(owner).note_write(vaddr, count)

    def check_read(self, reader: str, vaddr: int, count: int) -> None:
        """Validate that ``reader`` may read the range coherently."""
        if self.coherent or not self.strict:
            return
        for owner, cache in self._caches.items():
            if owner != reader and cache.dirty_in_range(vaddr, count):
                raise CoherenceViolation(
                    f"{reader} read [{vaddr:#x}, {vaddr + count:#x}) while "
                    f"{owner} holds dirty lines in it (missing flush)")

    def flush(self, owner: str) -> int:
        return self.cache(owner).flush()

    def flush_range(self, owner: str, vaddr: int, count: int) -> int:
        return self.cache(owner).flush_range(vaddr, count)

    def total_bytes_flushed(self) -> int:
        return sum(c.bytes_flushed for c in self._caches.values())
