"""Memory substrate: physical frames, page tables, TLBs, surfaces, caches.

This package implements everything the EXO architecture's shared virtual
memory rests on: a physical frame store, IA32-format and GPU(GTT)-format
page tables whose *incompatibility* is the reason ATR exists, per-sequencer
TLBs, 2-D surfaces with tiling, write-back cache dirty tracking, and the
bandwidth cost model behind the Figure 8 memory-configuration study.
"""

from .address_space import HEAP_BASE, AddressSpace, SequencerView
from .bandwidth import BandwidthModel
from .cache import LINE_SIZE, CoherencePoint, WritebackCache
from .flushing import FlushPlan, FlushPolicy, schedule_flush
from .gtt import GttMemType, gtt_memtype, gtt_pfn, gtt_valid, make_gtt_entry
from .paging import IA32PageTable, Translation, make_pte, pte_pfn
from .physical import PAGE_SHIFT, PAGE_SIZE, PhysicalMemory
from .surface import TILE, Surface, TileMode
from .tlb import Tlb

__all__ = [
    "AddressSpace",
    "SequencerView",
    "HEAP_BASE",
    "BandwidthModel",
    "CoherencePoint",
    "WritebackCache",
    "LINE_SIZE",
    "FlushPolicy",
    "FlushPlan",
    "schedule_flush",
    "GttMemType",
    "make_gtt_entry",
    "gtt_valid",
    "gtt_pfn",
    "gtt_memtype",
    "IA32PageTable",
    "Translation",
    "make_pte",
    "pte_pfn",
    "PhysicalMemory",
    "PAGE_SIZE",
    "PAGE_SHIFT",
    "Surface",
    "TileMode",
    "TILE",
    "Tlb",
]
