"""The loosely-coupled, driver-based GPGPU baseline (paper Figure 1(a)).

"In this line of work, the CPU resources (cores and memory) are managed
by the OS, and the GPU resources are separately managed by vendor-supplied
device drivers.  Applications and device drivers run in separate address
spaces, and consequently, the data communication and synchronization
between them are usually carried out in coarse granularity through
explicit data copying via device driver APIs."

This package implements that stack over the same GMA device model, so the
two programming models can be compared like-for-like: separate device
address space, explicit ``memcpy`` in both directions at the measured
3.1 GB/s rate, driver-call overheads, and kernel launches that cannot
share pointers with the host.  EXOCHI's shared-virtual-memory claim
(Figure 8, section 5.2) is exactly the removal of this machinery.
"""

from .driver import DeviceBuffer, DriverStats, GpgpuDriver

__all__ = ["GpgpuDriver", "DeviceBuffer", "DriverStats"]
