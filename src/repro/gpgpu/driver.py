"""A vendor-driver-style API over the GMA device model.

The shape every pre-EXOCHI GPGPU stack shared (CUDA's early driver API,
DPVM, Brook's runtimes): opaque device buffers in a *separate* address
space, explicit host<->device copies, kernel launches by handle, and a
user/kernel-mode transition cost on every driver call.  Functionally
correct; the costs are what Figure 8's Data Copy configuration charges,
plus the per-call overhead the user-level EXOCHI runtime avoids ("EXOCHI's
user-level runtime can be used to schedule shreds and coordinate
light-weight inter-shred data communication efficiently through shared
virtual memory").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import ChiError
from ..exo.shred import ShredDescriptor
from ..gma.device import GmaDevice
from ..isa.assembler import assemble
from ..isa.program import Program
from ..isa.types import DataType
from ..memory.address_space import AddressSpace
from ..memory.bandwidth import BandwidthModel
from ..memory.surface import Surface


class DriverError(ChiError):
    """Misuse of the driver API (bad handle, size mismatch, freed buffer)."""


@dataclass
class DeviceBuffer:
    """An opaque device allocation: the host never holds a pointer."""

    handle: int
    surface: Surface
    nbytes: int
    freed: bool = False


@dataclass
class DriverStats:
    """What the loosely-coupled stack costs."""

    driver_calls: int = 0
    bytes_host_to_device: int = 0
    bytes_device_to_host: int = 0
    copy_seconds: float = 0.0
    launch_seconds: float = 0.0
    overhead_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.copy_seconds + self.launch_seconds + self.overhead_seconds


class GpgpuDriver:
    """The Figure 1(a) stack: OS-managed host, driver-managed device.

    Every call models a user->kernel-mode transition
    (``call_overhead_seconds``); data crosses address spaces only through
    :meth:`memcpy_htod` / :meth:`memcpy_dtoh` at the paper's 3.1 GB/s
    SSE-to-write-combining rate.
    """

    #: Cost of one ioctl-style driver transition.  Microseconds-scale user
    #: to kernel round trip, vs the nanoseconds-scale user-level SIGNAL.
    call_overhead_seconds: float = 5e-6

    def __init__(self, bandwidth: Optional[BandwidthModel] = None):
        # the device's own address space: nothing in it is host-visible
        self._device_space = AddressSpace()
        self._device = GmaDevice(self._device_space)
        self._bandwidth = bandwidth if bandwidth is not None else BandwidthModel()
        self._buffers: Dict[int, DeviceBuffer] = {}
        self._kernels: Dict[int, Program] = {}
        self._handles = itertools.count(1)
        self.stats = DriverStats()

    @property
    def device(self) -> GmaDevice:
        """The driver-managed device (inspection only; all data movement
        still goes through the copy APIs)."""
        return self._device

    # -- memory management ------------------------------------------------------

    def malloc(self, nbytes: int, width: Optional[int] = None,
               height: int = 1, dtype: DataType = DataType.UB) -> int:
        """Allocate device memory; returns an opaque handle."""
        self._enter_driver()
        if nbytes <= 0:
            raise DriverError("allocation size must be positive")
        width = width if width is not None else nbytes // dtype.size
        surface = Surface.alloc(self._device_space, f"buf{nbytes}",
                                width, height, dtype)
        buffer = DeviceBuffer(handle=next(self._handles), surface=surface,
                              nbytes=nbytes)
        self._buffers[buffer.handle] = buffer
        return buffer.handle

    def free(self, handle: int) -> None:
        self._enter_driver()
        self._buffer(handle).freed = True

    def memcpy_htod(self, handle: int, data: np.ndarray) -> None:
        """Copy host data into a device buffer (explicit, 3.1 GB/s)."""
        self._enter_driver()
        buffer = self._buffer(handle)
        image = np.asarray(data, dtype=np.float64)
        flat = image.reshape(-1)
        if flat.size > buffer.surface.nelems:
            raise DriverError(
                f"copy of {flat.size} elements exceeds buffer of "
                f"{buffer.surface.nelems}")
        buffer.surface.write_linear(self._device_space, 0, flat)
        nbytes = flat.size * buffer.surface.esize
        self.stats.bytes_host_to_device += nbytes
        self.stats.copy_seconds += self._bandwidth.copy_seconds(nbytes)

    def memcpy_dtoh(self, handle: int, count: Optional[int] = None) -> np.ndarray:
        """Copy a device buffer back to the host."""
        self._enter_driver()
        buffer = self._buffer(handle)
        count = count if count is not None else buffer.surface.nelems
        data = buffer.surface.read_linear(self._device_space, 0, count)
        nbytes = count * buffer.surface.esize
        self.stats.bytes_device_to_host += nbytes
        self.stats.copy_seconds += self._bandwidth.copy_seconds(nbytes)
        return data

    # -- kernels ---------------------------------------------------------------------

    def load_kernel(self, asm_text: str, name: str = "kernel") -> int:
        """JIT an accelerator kernel into the driver; returns a handle."""
        self._enter_driver()
        handle = next(self._handles)
        self._kernels[handle] = assemble(asm_text, name=name)
        return handle

    def load_program(self, program: Program) -> int:
        """Register an already-assembled kernel; returns a handle."""
        self._enter_driver()
        handle = next(self._handles)
        self._kernels[handle] = program
        return handle

    def launch(self, kernel: int, grid: Sequence[Dict[str, float]],
               buffers: Dict[str, int],
               constants: Optional[Dict[str, float]] = None) -> float:
        """Launch ``len(grid)`` threads of a kernel over device buffers.

        Returns the device execution time in seconds.  Synchronous, as
        early driver APIs were: the host blocks until completion.
        """
        self._enter_driver()
        program = self._kernels.get(kernel)
        if program is None:
            raise DriverError(f"unknown kernel handle {kernel}")
        surfaces = {name: self._buffer(h).surface
                    for name, h in buffers.items()}
        consts = dict(constants or {})
        shreds = [ShredDescriptor(program=program,
                                  bindings={**consts, **bindings},
                                  surfaces=surfaces)
                  for bindings in grid]
        result = self._device.run(shreds)
        seconds = self._device.config.seconds(result.cycles)
        self.stats.launch_seconds += seconds
        return seconds

    # -- internal -----------------------------------------------------------------------

    def _buffer(self, handle: int) -> DeviceBuffer:
        buffer = self._buffers.get(handle)
        if buffer is None:
            raise DriverError(f"unknown buffer handle {handle}")
        if buffer.freed:
            raise DriverError(f"buffer {handle} was freed")
        return buffer

    def _enter_driver(self) -> None:
        self.stats.driver_calls += 1
        self.stats.overhead_seconds += self.call_overhead_seconds
