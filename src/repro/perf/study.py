"""The central measurement harness behind Figures 7, 8 and 10.

One functional+timing run per kernel (at a scaled geometry chosen to keep
all 32 exo-sequencers busy) yields everything the evaluation section
needs: the GMA's simulated time, the IA32 cost model's time, and the
per-frame communication footprint.  Figure 8's memory models and Figure
10's partitions are then derived analytically from the same measurement,
exactly as the mechanisms compose on the real platform.

Scaling note (see DESIGN.md): the interpreter executes every instruction
of every shred in Python, so benchmark geometries are scaled down from the
paper's.  Per-pixel costs are scale-invariant on both sides of the
speedup ratio once the shred count exceeds the 32 hardware contexts, which
every benchmark geometry here guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..chi.scheduler import (
    PartitionOutcome,
    dynamic_partition,
    oracle_partition,
    static_partition,
    work_stealing_partition,
)
from ..cpu.ia32 import Ia32Cpu
from ..kernels import ALL_KERNELS, Geometry, MediaKernel, run_kernel_on_gma
from ..memory.flushing import FlushPolicy
from .machine import DEFAULT_MACHINE, MachineConfig
from .memory_models import MemoryModel, communication_cost

#: Scaled evaluation geometries: every entry keeps >= 32 shreds in flight
#: per frame (except FMD, whose 22 strips match the paper's own width).
BENCH_GEOMETRIES: Dict[str, Geometry] = {
    "LinearFilter": Geometry(160, 96),  # 20x16 = 320 shreds
    "SepiaTone": Geometry(160, 96),  # 20x12 = 240 shreds
    "FGT": Geometry(256, 256),  # 32 strips
    "Bicubic": Geometry(640, 192),  # 8x4 = 32 tiles: one full wave
    "Kalman": Geometry(256, 128, frames=2),  # 8x4 = 32 tiles
    "FMD": Geometry(1024, 96, frames=3),  # 32 strips x 1 window
    "AlphaBlend": Geometry(640, 192),
    "BOB": Geometry(640, 192),
    "ADVDI": Geometry(640, 192),
    "ProcAmp": Geometry(640, 192),
}

#: Smaller geometries for fast tests (still functionally verified).
SMOKE_GEOMETRIES: Dict[str, Geometry] = {
    "LinearFilter": Geometry(80, 48),
    "SepiaTone": Geometry(80, 48),
    "FGT": Geometry(64, 32),
    "Bicubic": Geometry(160, 96),
    "Kalman": Geometry(64, 64, frames=2),
    "FMD": Geometry(64, 48, frames=3),
    "AlphaBlend": Geometry(80, 48),
    "BOB": Geometry(80, 48),
    "ADVDI": Geometry(80, 48),
    "ProcAmp": Geometry(80, 48),
}


@dataclass
class KernelMeasurement:
    """One kernel's measured GMA time + modelled IA32 time + footprint."""

    kernel: MediaKernel
    geometry: Geometry
    machine: MachineConfig
    gma_seconds: float  # per device invocation (one frame / window)
    cpu_seconds: float  # same work on the IA32 sequencer
    in_bytes: int  # per-frame communication footprint
    out_bytes: int
    frame_shreds: int
    instructions: int
    gma_bound: str
    atr_events: int

    # -- Figure 7 ------------------------------------------------------------------

    @property
    def speedup(self) -> float:
        """GMA-over-IA32 speedup under CC Shared (the Figure 7 bar)."""
        return self.cpu_seconds / self.gma_seconds

    # -- Figure 8 ----------------------------------------------------------------------

    def model_seconds(self, model: MemoryModel,
                      flush_policy: FlushPolicy = FlushPolicy.INTERLEAVED,
                      optimized_flush: bool = True,
                      include_output_flush: bool = True) -> float:
        cost = communication_cost(
            model, self.in_bytes, self.out_bytes, self.gma_seconds,
            self.frame_shreds, self.machine.gma.num_sequencers,
            self.machine.bandwidth, flush_policy, optimized_flush,
            include_output_flush)
        return self.gma_seconds + cost.exposed_seconds

    def relative_performance(self, model: MemoryModel, **kwargs) -> float:
        """Performance relative to CC Shared (1.0 = full speed)."""
        return self.gma_seconds / self.model_seconds(model, **kwargs)

    def model_speedup(self, model: MemoryModel, **kwargs) -> float:
        return self.cpu_seconds / self.model_seconds(model, **kwargs)

    # -- Figure 10 -----------------------------------------------------------------------

    def partition(self, policy: str, cpu_fraction: float = 0.0,
                  num_chunks: int = 0) -> PartitionOutcome:
        if policy == "static":
            return static_partition(self.cpu_seconds, self.gma_seconds,
                                    cpu_fraction)
        if policy == "oracle":
            return oracle_partition(self.cpu_seconds, self.gma_seconds)
        if policy == "dynamic":
            return dynamic_partition(self.cpu_seconds, self.gma_seconds,
                                     num_chunks or self.frame_shreds)
        if policy == "work-stealing":
            return work_stealing_partition(self.cpu_seconds,
                                           self.gma_seconds,
                                           num_chunks or self.frame_shreds)
        raise ValueError(f"unknown partition policy {policy!r}")


def measure_kernel(kernel: MediaKernel, geometry: Optional[Geometry] = None,
                   machine: MachineConfig = DEFAULT_MACHINE,
                   seed: int = 0, max_frames: int = 1,
                   verify: bool = True) -> KernelMeasurement:
    """Run one kernel on the device model and package the measurement."""
    geometry = geometry or BENCH_GEOMETRIES[kernel.abbrev]
    result = run_kernel_on_gma(kernel, geometry, seed=seed, verify=verify,
                               max_frames=max_frames)
    per_frame_cycles = result.gma_cycles / max(result.frames_run, 1)
    gma_seconds = machine.gma.seconds(per_frame_cycles)

    # CPU cost for the same work one device invocation covers
    invocations = kernel.device_invocations(geometry)
    work = kernel.cpu_work(geometry)
    cpu = Ia32Cpu(machine.cpu).execute(work, fraction=1.0 / invocations)
    in_bytes, out_bytes = kernel.io_bytes_per_frame(geometry)
    return KernelMeasurement(
        kernel=kernel,
        geometry=geometry,
        machine=machine,
        gma_seconds=gma_seconds,
        cpu_seconds=cpu.seconds,
        in_bytes=in_bytes,
        out_bytes=out_bytes,
        frame_shreds=kernel.frame_shreds(geometry),
        instructions=result.instructions,
        gma_bound=result.bound,
        atr_events=result.atr_events,
    )


_SUITE_CACHE: Dict[tuple, Dict[str, KernelMeasurement]] = {}


def run_suite(machine: MachineConfig = DEFAULT_MACHINE, seed: int = 0,
              smoke: bool = False,
              use_cache: bool = True) -> Dict[str, KernelMeasurement]:
    """Measure the whole Table 2 suite (cached within the process)."""
    key = (id(machine) if machine is not DEFAULT_MACHINE else 0, seed, smoke)
    if use_cache and key in _SUITE_CACHE:
        return _SUITE_CACHE[key]
    geometries = SMOKE_GEOMETRIES if smoke else BENCH_GEOMETRIES
    out: Dict[str, KernelMeasurement] = {}
    for cls in ALL_KERNELS:
        kernel = cls()
        out[kernel.abbrev] = measure_kernel(
            kernel, geometries[kernel.abbrev], machine, seed)
    if use_cache:
        _SUITE_CACHE[key] = out
    return out
