"""Chrome-trace export of device runs.

Turns one :class:`~repro.gma.firmware.GmaRunResult` into the Trace Event
JSON that ``chrome://tracing`` / Perfetto render: one process row per EU,
one thread row per hardware context, one complete event per shred.  The
occupancy picture this draws — full EUs during the steady state, the tail
as the work queue drains — is how the paper's authors reasoned about
shred-level parallelism being the first-order performance factor.

For multi-accelerator runs, :func:`fabric_chrome_trace_events` renders
one *process row per fabric device* instead, with the device's hardware
contexts as thread rows — the view where load balance across the fabric
is the first-order picture and per-EU occupancy the second.
"""

from __future__ import annotations

import json
from typing import List, Optional, Sequence

from ..gma.firmware import GmaRunResult
from ..gma.timing import GmaTimingConfig


def chrome_trace_events(result: GmaRunResult,
                        config: Optional[GmaTimingConfig] = None) -> List[dict]:
    """Trace Event objects for one device run (timestamps in us)."""
    config = config or GmaTimingConfig()
    per_us = config.frequency / 1e6  # cycles per microsecond
    events: List[dict] = []
    for eu in range(config.num_eus):
        events.append({
            "ph": "M", "name": "process_name", "pid": eu,
            "args": {"name": f"EU {eu}"},
        })
    by_id = {run.shred.shred_id: run for run in result.runs}
    for shred_id, (start, finish, eu, slot) in sorted(
            result.timing.spans.items()):
        run = by_id.get(shred_id)
        events.append({
            "ph": "X",
            "name": f"shred {shred_id}"
                    + (f" ({run.shred.program.name})" if run else ""),
            "pid": eu,
            "tid": slot,
            "ts": start / per_us,
            "dur": max(finish - start, 1e-9) / per_us,
            "args": {
                "instructions": run.instructions if run else 0,
                "bytes": run.bytes_total if run else 0,
                "atr_events": run.atr_events if run else 0,
            },
        })
    return events


def export_chrome_trace(result: GmaRunResult, path,
                        config: Optional[GmaTimingConfig] = None) -> int:
    """Write a ``chrome://tracing`` JSON file; returns the event count."""
    events = chrome_trace_events(result, config)
    with open(path, "w") as handle:
        json.dump({"traceEvents": events,
                   "displayTimeUnit": "ns"}, handle)
    return len(events)


def fabric_chrome_trace_events(reports: Sequence,
                               device_atr: Optional[dict] = None,
                               ) -> List[dict]:
    """Trace Events for one fabric region: one process row per device.

    ``reports`` are :class:`~repro.fabric.device.DeviceRunReport` objects
    (duck-typed: ``device``, ``isa``, ``seconds``, ``results``,
    ``config``).  Thread rows are the device's hardware contexts
    (``eu * threads_per_eu + slot``); sub-batches of a blocking admission
    appear back to back, offset by their predecessors' drain cycles.
    Backends that expose no per-shred timing (the driver-managed stack)
    get a single span covering their drain time.

    ``device_atr`` (e.g. :attr:`repro.chi.runtime.RuntimeStats.device_atr`)
    attaches each device's translation breakdown — TLB hits/misses, GTT
    walks, shootdowns absorbed — to its process metadata row.

    A report that carries nonzero ``wall_seconds`` (a
    :func:`~repro.fabric.dispatcher.drain_devices` drain) gets the host
    wall-clock attached to its metadata row; a report whose results carry
    engine counters (the gang engine) gets a Chrome counter track.
    """
    events: List[dict] = []
    for pid, report in enumerate(reports):
        worker = getattr(report, "worker", "")
        row = f"{report.device} ({report.isa})"
        if worker:
            # out-of-process drain: name the row after the hosting worker
            # so per-worker concurrency is visible at a glance
            row = f"{report.device} ({report.isa}) @ {worker}"
        args = {"name": row}
        if worker:
            args["worker"] = worker
        if device_atr and report.device in device_atr:
            args["atr"] = dict(device_atr[report.device])
        wall = getattr(report, "wall_seconds", 0.0)
        if wall > 0.0:
            args["wall_seconds"] = wall
        events.append({
            "ph": "M", "name": "process_name", "pid": pid,
            "args": args,
        })
        engine = {
            key: sum(getattr(result, key, 0) for result in report.results)
            for key in ("gang_lanes_retired", "scalar_fallbacks",
                        "predecode_hits", "predecode_misses",
                        "batched_mem_lanes", "batched_translations",
                        "tlb_vector_hits", "fused_blocks_retired",
                        "trace_chains", "fusion_compiles",
                        "megaops_retired", "megaop_compiles",
                        "megaop_deopts", "gang_repacks",
                        "lanes_readmitted")
        }
        if any(engine.values()):
            instructions = sum(getattr(result, "instructions", 0)
                               for result in report.results)
            if instructions:
                # derived, not summable: recompute per report
                engine["gang_residency_pct"] = round(
                    100.0 * engine["gang_lanes_retired"] / instructions, 2)
            events.append({
                "ph": "C", "name": "engine", "pid": pid,
                "ts": 0.0, "args": engine,
            })
        config = report.config
        if config is None or not report.results:
            if report.seconds > 0.0:
                events.append({
                    "ph": "X", "name": f"{report.device} drain",
                    "pid": pid, "tid": 0,
                    "ts": 0.0, "dur": report.seconds * 1e6,
                    "args": {"shreds": report.shreds},
                })
            continue
        per_us = config.frequency / 1e6
        offset = 0.0
        for result in report.results:
            by_id = {run.shred.shred_id: run for run in result.runs}
            for shred_id, (start, finish, eu, slot) in sorted(
                    result.timing.spans.items()):
                run = by_id.get(shred_id)
                events.append({
                    "ph": "X",
                    "name": f"shred {shred_id}"
                            + (f" ({run.shred.program.name})" if run else ""),
                    "pid": pid,
                    "tid": eu * config.threads_per_eu + slot,
                    "ts": (start + offset) / per_us,
                    "dur": max(finish - start, 1e-9) / per_us,
                    "args": {
                        "instructions": run.instructions if run else 0,
                        "bytes": run.bytes_total if run else 0,
                        "atr_events": run.atr_events if run else 0,
                    },
                })
            offset += result.timing.cycles
    return events


def export_fabric_chrome_trace(reports: Sequence, path,
                               device_atr: Optional[dict] = None) -> int:
    """Write a fabric region's trace JSON; returns the event count."""
    events = fabric_chrome_trace_events(reports, device_atr=device_atr)
    with open(path, "w") as handle:
        json.dump({"traceEvents": events,
                   "displayTimeUnit": "ns"}, handle)
    return len(events)


#: Process-row id for the shootdown track (kept clear of EU/device rows).
SHOOTDOWN_PID = 1000


def shootdown_trace_events(space, pid: int = SHOOTDOWN_PID) -> List[dict]:
    """One Chrome-trace span per ATR shootdown broadcast.

    ``space`` is an :class:`~repro.memory.address_space.AddressSpace`;
    its :attr:`shootdown_events` carry no simulated timestamps (frees
    happen on the host between regions), so spans are laid out on the
    broadcast sequence number with the page count as duration — the
    Perfetto row then reads as "broadcast #n invalidated k pages across
    m views".
    """
    events: List[dict] = [{
        "ph": "M", "name": "process_name", "pid": pid,
        "args": {"name": "ATR shootdowns"},
    }]
    for event in space.shootdown_events:
        events.append({
            "ph": "X",
            "name": f"shootdown ({event['reason']})",
            "pid": pid,
            "tid": 0,
            "ts": float(event["seq"]),
            "dur": float(max(event["pages"], 1)),
            "args": {
                "reason": event["reason"],
                "pages": event["pages"],
                "views": event["views"],
            },
        })
    return events


def export_shootdown_trace(space, path, pid: int = SHOOTDOWN_PID) -> int:
    """Write the shootdown track as trace JSON; returns the event count."""
    events = shootdown_trace_events(space, pid=pid)
    with open(path, "w") as handle:
        json.dump({"traceEvents": events,
                   "displayTimeUnit": "ns"}, handle)
    return len(events)


#: First process-row id for serving-layer device slots (one row each).
SERVING_PID = 2000


def serving_trace_events(server, pid: int = SERVING_PID) -> List[dict]:
    """Chrome-trace rows for one :class:`~repro.serving.ExoServer` run.

    One process row per device slot; each dispatched batch is a span at
    its host wall-clock position (seconds since the server started),
    tagged with the owning session, the requests it merged, and its lane
    count — a coalesced batch reads directly as "gma0 ran 8 requests of
    tenant-a as one gang".  A counter track accumulates the coalescing
    totals over batch sequence.
    """
    events: List[dict] = []
    rows = {}
    for slot in server.slots:
        rows[slot.name] = pid + len(rows)
        # slot.engine, not slot.gma.engine: remote slots have gma=None
        name = f"serving {slot.name} ({slot.engine})"
        if getattr(slot, "worker", None) is not None:
            name += f" @ {slot.worker.name}"
        events.append({
            "ph": "M", "name": "process_name", "pid": rows[slot.name],
            "args": {"name": name},
        })
    gangs = lanes = 0
    for seq, entry in enumerate(server.trace_log):
        row = rows.get(entry["slot"], pid)
        events.append({
            "ph": "X",
            "name": f"{entry['session']}"
                    + (" gang" if entry["coalesced"] else ""),
            "pid": row,
            "tid": 0,
            "ts": max(entry["start"], 0.0) * 1e6,
            "dur": max(entry["wall_seconds"], 1e-9) * 1e6,
            "args": {
                "session": entry["session"],
                "requests": entry["requests"],
                "lanes": entry["lanes"],
                "simulated_seconds": entry["seconds"],
            },
        })
        if entry["coalesced"]:
            gangs += 1
            lanes += entry["lanes"]
        events.append({
            "ph": "C", "name": "coalescing", "pid": rows[
                next(iter(rows))] if rows else pid,
            "ts": float(seq),
            "args": {"gangs_coalesced": gangs, "coalesced_lanes": lanes},
        })
    return events


def export_serving_trace(server, path, pid: int = SERVING_PID) -> int:
    """Write the serving layer's trace JSON; returns the event count."""
    events = serving_trace_events(server, pid=pid)
    with open(path, "w") as handle:
        json.dump({"traceEvents": events,
                   "displayTimeUnit": "ns"}, handle)
    return len(events)
