"""Chrome-trace export of device runs.

Turns one :class:`~repro.gma.firmware.GmaRunResult` into the Trace Event
JSON that ``chrome://tracing`` / Perfetto render: one process row per EU,
one thread row per hardware context, one complete event per shred.  The
occupancy picture this draws — full EUs during the steady state, the tail
as the work queue drains — is how the paper's authors reasoned about
shred-level parallelism being the first-order performance factor.
"""

from __future__ import annotations

import json
from typing import List, Optional

from ..gma.firmware import GmaRunResult
from ..gma.timing import GmaTimingConfig


def chrome_trace_events(result: GmaRunResult,
                        config: Optional[GmaTimingConfig] = None) -> List[dict]:
    """Trace Event objects for one device run (timestamps in us)."""
    config = config or GmaTimingConfig()
    per_us = config.frequency / 1e6  # cycles per microsecond
    events: List[dict] = []
    for eu in range(config.num_eus):
        events.append({
            "ph": "M", "name": "process_name", "pid": eu,
            "args": {"name": f"EU {eu}"},
        })
    by_id = {run.shred.shred_id: run for run in result.runs}
    for shred_id, (start, finish, eu, slot) in sorted(
            result.timing.spans.items()):
        run = by_id.get(shred_id)
        events.append({
            "ph": "X",
            "name": f"shred {shred_id}"
                    + (f" ({run.shred.program.name})" if run else ""),
            "pid": eu,
            "tid": slot,
            "ts": start / per_us,
            "dur": max(finish - start, 1e-9) / per_us,
            "args": {
                "instructions": run.instructions if run else 0,
                "bytes": run.bytes_total if run else 0,
                "atr_events": run.atr_events if run else 0,
            },
        })
    return events


def export_chrome_trace(result: GmaRunResult, path,
                        config: Optional[GmaTimingConfig] = None) -> int:
    """Write a ``chrome://tracing`` JSON file; returns the event count."""
    events = chrome_trace_events(result, config)
    with open(path, "w") as handle:
        json.dump({"traceEvents": events,
                   "displayTimeUnit": "ns"}, handle)
    return len(events)
