"""Evaluation harness: the measurements behind Figures 7, 8, 10 and
Table 2, plus the section 5.2 flush ablation."""

from .machine import DEFAULT_MACHINE, MachineConfig
from .memory_models import MemoryModel, ModelCost, communication_cost
from .report import (
    format_figure7,
    format_figure8,
    format_figure10,
    format_flush_ablation,
    format_table,
    format_table2,
)
from .study import (
    BENCH_GEOMETRIES,
    SMOKE_GEOMETRIES,
    KernelMeasurement,
    measure_kernel,
    run_suite,
)

__all__ = [
    "MachineConfig",
    "DEFAULT_MACHINE",
    "MemoryModel",
    "ModelCost",
    "communication_cost",
    "KernelMeasurement",
    "measure_kernel",
    "run_suite",
    "BENCH_GEOMETRIES",
    "SMOKE_GEOMETRIES",
    "format_table",
    "format_table2",
    "format_figure7",
    "format_figure8",
    "format_figure10",
    "format_flush_ablation",
]
