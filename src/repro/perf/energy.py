"""Energy-per-instruction model (paper section 1).

The paper's whole motivation is EPI: "to achieve a 20X improvement ...
while staying below the power envelope of 150W, the building-block cores
must have an average EPI of approximately 1nJ.  The EPI for the Intel
Core 2 Duo processor core is approximately 10nJ while the EPI for the
8-core 32-thread Intel GMA X3000 is only 0.3nJ."

This module prices a kernel run on both sequencer classes with those
numbers: GMA instruction counts come straight from the simulator; IA32
instruction counts derive from the calibrated cycle model and a
representative sustained IPC.  The product is the heterogeneous-offload
energy story Figure 7 only tells in time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .study import KernelMeasurement

#: Paper-stated energy per instruction, joules.
CPU_EPI = 10e-9
GMA_EPI = 0.3e-9

#: Sustained instructions per cycle for the SSE-optimized IA32 kernels
#: (Core 2 is 4-wide issue; media loops sustain roughly half of that).
CPU_SUSTAINED_IPC = 2.0


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy and energy-delay for one kernel on both sequencer classes."""

    kernel_abbrev: str
    cpu_instructions: float
    gma_instructions: float
    cpu_joules: float
    gma_joules: float
    cpu_seconds: float
    gma_seconds: float

    @property
    def energy_ratio(self) -> float:
        """How many times less energy the GMA spends (higher = better)."""
        return self.cpu_joules / self.gma_joules if self.gma_joules else 0.0

    @property
    def cpu_edp(self) -> float:
        """Energy-delay product on the IA32 sequencer (J*s)."""
        return self.cpu_joules * self.cpu_seconds

    @property
    def gma_edp(self) -> float:
        return self.gma_joules * self.gma_seconds

    @property
    def edp_ratio(self) -> float:
        return self.cpu_edp / self.gma_edp if self.gma_edp else 0.0

    @property
    def cpu_watts(self) -> float:
        """Average power while the kernel runs on the IA32 sequencer."""
        return self.cpu_joules / self.cpu_seconds if self.cpu_seconds else 0.0

    @property
    def gma_watts(self) -> float:
        return self.gma_joules / self.gma_seconds if self.gma_seconds else 0.0


def estimate_energy(measurement: KernelMeasurement,
                    cpu_epi: float = CPU_EPI,
                    gma_epi: float = GMA_EPI,
                    cpu_ipc: float = CPU_SUSTAINED_IPC) -> EnergyEstimate:
    """Price one kernel measurement in joules on both sequencer classes."""
    cpu_cycles = measurement.cpu_seconds * measurement.machine.cpu.frequency
    cpu_instructions = cpu_cycles * cpu_ipc
    # one simulated GMA instruction retires up to 16 lanes; EPI is quoted
    # per (architectural) instruction on both machines
    gma_instructions = float(measurement.instructions)
    return EnergyEstimate(
        kernel_abbrev=measurement.kernel.abbrev,
        cpu_instructions=cpu_instructions,
        gma_instructions=gma_instructions,
        cpu_joules=cpu_instructions * cpu_epi,
        gma_joules=gma_instructions * gma_epi,
        cpu_seconds=measurement.cpu_seconds,
        gma_seconds=measurement.gma_seconds,
    )


def format_energy_table(suite: Dict[str, KernelMeasurement]) -> str:
    """Render the EPI story for the whole kernel suite."""
    from .report import format_table

    rows = []
    ratios = []
    for abbrev, measurement in suite.items():
        est = estimate_energy(measurement)
        ratios.append(est.energy_ratio)
        rows.append([
            abbrev,
            f"{est.cpu_joules * 1e6:.1f}",
            f"{est.gma_joules * 1e6:.2f}",
            f"{est.energy_ratio:.0f}x",
            f"{est.edp_ratio:.0f}x",
        ])
    rows.append(["GEOMEAN", "", "",
                 f"{_geomean(ratios):.0f}x", ""])
    return format_table(
        ["kernel", "IA32 uJ/frame", "GMA uJ/frame", "energy ratio",
         "EDP ratio"],
        rows,
        title="Energy per frame at the paper's EPI figures "
              "(IA32 10 nJ/instr, GMA 0.3 nJ/instr)")


def _geomean(values) -> float:
    import math

    logs = [math.log(v) for v in values if v > 0]
    return math.exp(sum(logs) / len(logs)) if logs else 0.0
