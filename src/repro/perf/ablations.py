"""Architecture ablations: quantify the mechanisms the paper credits.

Three design points DESIGN.md calls out:

* **switch-on-stall multithreading** — "the core's fine-grained thread
  multiplexing capability plays a critical role in sustaining throughput
  performance" (section 3.4).  Replaying the same shred traces with 1, 2
  and 4 thread contexts per EU isolates how much of the throughput comes
  from stall hiding rather than raw lanes.
* **runtime surface pre-validation** — section 4.6's "the CHI runtime
  inspects these descriptors and configures the accelerator": with it,
  shreds never pay in-flight ATR round trips; without it, every first
  touch of a page suspends a shred for a full proxy.
* **interleaved cache flushing** — covered by
  ``benchmarks/bench_flush_ablation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from ..gma.device import GmaDevice
from ..gma.eu import simulate_device
from ..gma.timing import GmaTimingConfig
from ..kernels.base import Geometry, MediaKernel
from ..kernels.harness import allocate_surfaces, build_program
from ..exo.shred import ShredDescriptor
from ..memory.address_space import AddressSpace


@dataclass(frozen=True)
class MultithreadingAblation:
    """EU pipeline cycles for the same work at different thread counts.

    Compute cycles (not the bandwidth/sampler-bounded total) are compared:
    switch-on-stall is an EU pipeline mechanism, and on a bandwidth-bound
    kernel its gain is hidden behind the memory bound — which is itself a
    faithful observation.
    """

    kernel_abbrev: str
    cycles_by_threads: Dict[int, float]

    def speedup(self, threads: int) -> float:
        """Pipeline throughput gain over a single context per EU."""
        return self.cycles_by_threads[1] / self.cycles_by_threads[threads]


def multithreading_ablation(kernel: MediaKernel, geometry: Geometry,
                            thread_counts=(1, 2, 4),
                            seed: int = 0) -> MultithreadingAblation:
    """Run the kernel once, then replay its traces at each thread count.

    Traces are timing-config independent (instruction issue/latency pairs),
    so one functional execution feeds every configuration — the controlled
    experiment real hardware cannot run.
    """
    runs = _collect_runs(kernel, geometry, seed)
    base = GmaTimingConfig()
    cycles = {}
    for threads in thread_counts:
        config = replace(base, threads_per_eu=threads)
        timing = simulate_device(runs, config)
        cycles[threads] = timing.compute_cycles
    return MultithreadingAblation(kernel.abbrev, cycles)


@dataclass(frozen=True)
class PrevalidationAblation:
    """ATR behaviour with and without runtime surface pre-validation."""

    kernel_abbrev: str
    prepared_cycles: float
    prepared_atr_events: int
    cold_cycles: float
    cold_atr_events: int

    @property
    def slowdown(self) -> float:
        return self.cold_cycles / self.prepared_cycles


def prevalidation_ablation(kernel: MediaKernel, geometry: Geometry,
                           seed: int = 0) -> PrevalidationAblation:
    """Compare a prepared launch against a cold-TLB, cold-GTT launch."""
    prepared = _run_device(kernel, geometry, seed, prepare=True)
    cold = _run_device(kernel, geometry, seed, prepare=False)
    return PrevalidationAblation(
        kernel_abbrev=kernel.abbrev,
        prepared_cycles=prepared.cycles,
        prepared_atr_events=prepared.atr_events,
        cold_cycles=cold.cycles,
        cold_atr_events=cold.atr_events,
    )


def _collect_runs(kernel: MediaKernel, geometry: Geometry, seed: int) -> List:
    result = _run_device(kernel, geometry, seed, prepare=True)
    return result.runs


def _run_device(kernel: MediaKernel, geometry: Geometry, seed: int,
                prepare: bool):
    space = AddressSpace()
    device = GmaDevice(space)
    program = build_program(kernel, geometry)
    surfaces = allocate_surfaces(kernel, geometry, space)
    for name, image in kernel.make_frame_inputs(geometry, 0, seed).items():
        surfaces[name].upload(space, image)
    consts = kernel.constants(geometry)
    shreds = [
        ShredDescriptor(program=program, bindings={**consts, **b},
                        surfaces=surfaces)
        for b in kernel.shred_bindings(geometry)
    ]
    return device.run(shreds, prepare_surfaces=prepare)


def format_multithreading_table(ablations) -> str:
    from .report import format_table

    rows = []
    for ab in ablations:
        rows.append([
            ab.kernel_abbrev,
            f"{ab.cycles_by_threads[1]:.0f}",
            f"{ab.cycles_by_threads[2]:.0f}",
            f"{ab.cycles_by_threads[4]:.0f}",
            f"{ab.speedup(4):.2f}x",
        ])
    return format_table(
        ["kernel", "1 thread/EU", "2 threads/EU", "4 threads/EU",
         "4-thread gain"],
        rows,
        title="Ablation: switch-on-stall multithreading (device cycles)")
