"""Machine configuration bundle for the evaluation harness."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cpu.timing import CpuTimingConfig
from ..gma.timing import GmaTimingConfig
from ..memory.bandwidth import BandwidthModel


@dataclass(frozen=True)
class MachineConfig:
    """Everything timing-related about the simulated Santa Rosa platform."""

    cpu: CpuTimingConfig = field(default_factory=CpuTimingConfig)
    gma: GmaTimingConfig = field(default_factory=GmaTimingConfig)
    bandwidth: BandwidthModel = field(default_factory=BandwidthModel)


DEFAULT_MACHINE = MachineConfig()
