"""Formatting of the evaluation tables and figure series.

Each ``format_*`` function renders the rows/series of one paper artifact
(Table 2, Figure 7, Figure 8, Figure 10, the section 5.2 flush ablation)
the way the benchmarks print them.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..kernels import ALL_KERNELS
from ..memory.flushing import FlushPolicy
from .memory_models import MemoryModel
from .study import KernelMeasurement


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 title: str = "") -> str:
    """Plain-text aligned table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_table2() -> str:
    """Table 2: kernels, inputs and shred counts (paper vs. our formula)."""
    rows: List[List[str]] = []
    for cls in ALL_KERNELS:
        kernel = cls()
        for config in kernel.paper_configs():
            ours = kernel.shred_count(config.geometry)
            delta = ""
            if ours != config.paper_shreds:
                delta = f"{100.0 * (ours - config.paper_shreds) / config.paper_shreds:+.1f}%"
            rows.append([
                kernel.abbrev,
                str(config.geometry),
                f"{config.paper_shreds:,}",
                f"{ours:,}",
                delta,
                config.note,
            ])
    return format_table(
        ["kernel", "input", "paper #shreds", "ours", "delta", "note"],
        rows, title="Table 2: media kernels and shred decomposition")


def format_figure7(suite: Dict[str, KernelMeasurement]) -> str:
    """Figure 7: speedup on GMA X3000 exo-sequencers over IA32."""
    rows = []
    for abbrev, m in suite.items():
        mark = "exact" if m.kernel.paper_speedup_exact else "approx"
        rows.append([
            abbrev,
            f"{m.kernel.paper_speedup:.2f}x ({mark})",
            f"{m.speedup:.2f}x",
            m.gma_bound,
            f"{m.gma_seconds * 1e6:.1f}",
            f"{m.cpu_seconds * 1e6:.1f}",
        ])
    return format_table(
        ["kernel", "paper speedup", "measured", "GMA bound by",
         "GMA us/frame", "IA32 us/frame"],
        rows, title="Figure 7: speedup from execution on GMA X3000 "
                    "exo-sequencers over IA32 sequencer")


def format_figure8(suite: Dict[str, KernelMeasurement]) -> str:
    """Figure 8: impact of data copying vs. shared virtual memory."""
    rows = []
    sums = {MemoryModel.DATA_COPY: 0.0, MemoryModel.NONCC_SHARED: 0.0}
    for abbrev, m in suite.items():
        dc = m.relative_performance(MemoryModel.DATA_COPY)
        ncc = m.relative_performance(MemoryModel.NONCC_SHARED)
        sums[MemoryModel.DATA_COPY] += dc
        sums[MemoryModel.NONCC_SHARED] += ncc
        rows.append([
            abbrev,
            f"{m.model_speedup(MemoryModel.DATA_COPY):.2f}x",
            f"{m.model_speedup(MemoryModel.NONCC_SHARED):.2f}x",
            f"{m.model_speedup(MemoryModel.CC_SHARED):.2f}x",
            f"{100 * dc:.1f}%",
            f"{100 * ncc:.1f}%",
        ])
    n = len(suite)
    rows.append([
        "AVERAGE", "", "", "",
        f"{100 * sums[MemoryModel.DATA_COPY] / n:.1f}% (paper 70.5%)",
        f"{100 * sums[MemoryModel.NONCC_SHARED] / n:.1f}% (paper 85.3%)",
    ])
    return format_table(
        ["kernel", "Data Copy", "Non-CC Shared", "CC Shared",
         "DC rel. perf", "Non-CC rel. perf"],
        rows, title="Figure 8: impact of shared virtual memory "
                    "(speedup over IA32 under each memory model)")


def format_figure10(suite: Dict[str, KernelMeasurement]) -> str:
    """Figure 10: cooperative IA32 + GMA execution, four partitions."""
    rows = []
    for abbrev, m in suite.items():
        base = m.cpu_seconds  # execution on the IA32 sequencer alone
        outcomes = [
            m.partition("static", 0.0),
            m.partition("static", 0.10),
            m.partition("static", 0.25),
            m.partition("oracle"),
        ]
        gma_only = outcomes[0].total_seconds
        oracle = outcomes[-1]
        rows.append(
            [abbrev]
            + [f"{o.total_seconds / base:.3f}" for o in outcomes]
            + [f"{100 * (1 - oracle.total_seconds / gma_only):.0f}%",
               f"{100 * oracle.cpu_fraction:.0f}%"]
        )
    return format_table(
        ["kernel", "0% on IA32", "10% on IA32", "25% on IA32", "oracle",
         "oracle gain", "oracle IA32 share"],
        rows, title="Figure 10: cooperative multi-shredding "
                    "(execution time relative to IA32 alone; lower is better)")


def format_flush_ablation(measurement: KernelMeasurement,
                          paper_upfront_speedup: float = 3.15) -> str:
    """Section 5.2's in-text experiment: unoptimized 2 GB/s cache flush,
    up-front vs. interleaved with shred execution."""
    cc = measurement.speedup
    upfront = measurement.model_speedup(
        MemoryModel.NONCC_SHARED, flush_policy=FlushPolicy.UPFRONT,
        optimized_flush=False, include_output_flush=False)
    interleaved = measurement.model_speedup(
        MemoryModel.NONCC_SHARED, flush_policy=FlushPolicy.INTERLEAVED,
        optimized_flush=False, include_output_flush=False)
    rows = [
        ["CC Shared (no flush needed)", f"{cc:.2f}x", ""],
        ["Non-CC, up-front flush @ 2 GB/s", f"{upfront:.2f}x",
         f"paper: {paper_upfront_speedup:.2f}x"],
        ["Non-CC, interleaved flush @ 2 GB/s", f"{interleaved:.2f}x",
         "paper: 'very close to cache-coherent'"],
    ]
    return format_table(
        ["configuration", f"{measurement.kernel.abbrev} speedup", "reference"],
        rows, title="Section 5.2 ablation: intelligent cache flushing")
