"""The three Figure 8 memory-model configurations.

Each configuration adds data-communication overhead on top of the
accelerator's compute time:

* **CC Shared** — cache-coherent shared virtual memory: pointers pass,
  caches snoop; no extra cost.
* **Non-CC Shared** — shared virtual memory without coherence: the IA32
  shred flushes its dirty working set before the shreds launch (the CHI
  runtime's interleaved flushing hides most of it behind the first shred
  wave) and the device flushes its output before releasing the semaphore.
* **Data Copy** — no shared virtual memory: inputs are copied into the
  device's address space and outputs copied back at the 3.1 GB/s
  SSE-to-write-combining rate the paper measured; fully exposed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..memory.bandwidth import BandwidthModel
from ..memory.flushing import FlushPolicy, schedule_flush


class MemoryModel(enum.Enum):
    DATA_COPY = "Data Copy"
    NONCC_SHARED = "Non-CC Shared"
    CC_SHARED = "CC Shared"


@dataclass(frozen=True)
class ModelCost:
    """Per-region data-communication overhead under one memory model."""

    model: MemoryModel
    exposed_seconds: float
    overlapped_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.exposed_seconds + self.overlapped_seconds


def communication_cost(model: MemoryModel, in_bytes: int, out_bytes: int,
                       gma_busy_seconds: float, num_shreds: int,
                       concurrent_shreds: int,
                       bandwidth: BandwidthModel,
                       flush_policy: FlushPolicy = FlushPolicy.INTERLEAVED,
                       optimized_flush: bool = True,
                       include_output_flush: bool = True) -> ModelCost:
    """Exposed + overlapped communication time for one parallel region.

    ``include_output_flush`` controls whether the device-side flush of the
    outputs (before the semaphore releases) counts as exposed; the section
    5.2 ablation reasons about the *input* working set only.
    """
    if model is MemoryModel.CC_SHARED:
        return ModelCost(model, 0.0, 0.0)
    if model is MemoryModel.DATA_COPY:
        # message-passing style: both directions serialized with execution
        seconds = bandwidth.copy_seconds(in_bytes + out_bytes)
        return ModelCost(model, seconds, 0.0)
    # Non-CC shared virtual memory: input flush (schedulable), output flush
    # (the exo-sequencers "flush the dirty lines into the memory" before
    # the semaphore releases — exposed at the tail)
    plan = schedule_flush(flush_policy, in_bytes, gma_busy_seconds,
                          num_shreds, concurrent_shreds, bandwidth,
                          optimized=optimized_flush)
    out_flush = 0.0
    if include_output_flush:
        out_flush = bandwidth.flush_seconds(out_bytes,
                                            optimized=optimized_flush)
    return ModelCost(model, plan.exposed_seconds + out_flush,
                     plan.overlapped_seconds)
