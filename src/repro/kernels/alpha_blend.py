"""AlphaBlend — "Bi-linear scale 64x32 image up to 720x480 and blend with
720x480 image" (Table 2).

Decomposition: 80x48 output tiles, 90 per 720x480 frame, 2,700 shreds over
30 frames.

This is the sampler showcase: each output pixel issues one fixed-function
bilinear texture fetch into the 64x32 source ("AlphaBlending benefits from
the ability to access the texture sampler fixed function unit; in the
absence of a texture sampler the IA32 sequencer code has to emulate this
behavior in software", section 5.1) and blends it over the destination.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..isa.types import DataType
from .base import Geometry, MediaKernel, PaperConfig, SurfaceSpec, f32
from .images import test_image

ALPHA = 0.75  # exactly representable in float32


class AlphaBlend(MediaKernel):
    """Bilinear upscale + alpha blend via the texture sampler.

    IA32 cost: the software bilinear emulation needs 4 gathers, 3 lerps
    and address arithmetic per pixel before the blend — ~16.8 cycles/pixel
    even with SSE, versus a single sampler message on the GMA.
    """

    name = "Alpha Blending"
    abbrev = "AlphaBlend"
    block = (80, 48)
    cpu_cycles_per_pixel = 16.8
    cpu_bytes_per_pixel = 3.0
    paper_speedup = 8.0

    def paper_configs(self) -> List[PaperConfig]:
        return [PaperConfig(Geometry(720, 480, frames=30), 2700)]

    def src_shape(self, geom: Geometry) -> Tuple[int, int]:
        """The logo source: 64x32, shrunk for tiny test geometries."""
        return (min(64, geom.width), min(32, geom.height))

    def scales(self, geom: Geometry) -> Tuple[float, float]:
        sw, sh = self.src_shape(geom)
        sx = (sw - 1) / max(geom.width - 1, 1)
        sy = (sh - 1) / max(geom.height - 1, 1)
        return (sx, sy)

    def constants(self, geom: Geometry) -> Dict[str, float]:
        sx, sy = self.scales(geom)
        return {
            "bh": float(self.block[1]),
            "bw": float(self.block[0]),
            "sx": sx,
            "sy": sy,
        }

    def surface_specs(self, geom: Geometry) -> Sequence[SurfaceSpec]:
        w, h = geom.width, geom.height
        sw, sh = self.src_shape(geom)
        return [
            SurfaceSpec("SRC", "input", DataType.UB, sw, sh),
            SurfaceSpec("DST", "input", DataType.UB, w, h),
            SurfaceSpec("OUT", "output", DataType.UB, w, h),
        ]

    def asm_source(self, geom: Geometry) -> str:
        return f"""
    mov.1.dw vr1 = 0              # row cursor
rowloop:
    add.1.dw vr2 = by, vr1        # output row y
    mul.1.f vr3 = vr2, sy         # source v coordinate (scalar)
    bcast.16.f vr4 = vr3
    mov.1.dw vr5 = 0              # column-group cursor
colloop:
    add.1.dw vr6 = bx, vr5        # output x base
    bcast.16.f vr13 = vr6
    iota.16.f vr7
    add.16.f vr8 = vr7, vr13      # output xs
    mul.16.f vr9 = vr8, sx        # source u coordinates
    sample.16.f vr10 = (SRC, vr9, vr4)
    ldblk.16x1.ub vr11 = (DST, vr6, vr2)
    sub.16.f vr12 = vr10, vr11
    mad.16.f vr12 = vr12, {ALPHA}, vr11   # dst + a*(src - dst)
    add.16.f vr12 = vr12, 0.5
    min.16.f vr12 = vr12, 255.0
    max.16.f vr12 = vr12, 0.0
    stblk.16x1.ub (OUT, vr6, vr2) = vr12
    add.1.dw vr5 = vr5, 16
    cmp.lt.1.dw p1 = vr5, bw
    br p1, colloop
    add.1.dw vr1 = vr1, 1
    cmp.lt.1.dw p2 = vr1, bh
    br p2, rowloop
    end
"""

    def make_frame_inputs(self, geom: Geometry, frame: int,
                          seed: int) -> Dict[str, np.ndarray]:
        sw, sh = self.src_shape(geom)
        return {
            "SRC": test_image(sw, sh, seed + 33),
            "DST": test_image(geom.width, geom.height, seed + frame),
        }

    def reference_frame(self, geom: Geometry, inputs: Dict[str, np.ndarray],
                        state: Dict) -> Tuple[Dict[str, np.ndarray], Dict]:
        src, dst = inputs["SRC"], inputs["DST"]
        h, w = dst.shape
        sx, sy = self.scales(geom)
        # coordinates the way the shred computes them (float32 steps)
        xs = f32(f32(np.arange(w, dtype=np.float64)) * f32(sx))
        ys = f32(f32(np.arange(h, dtype=np.float64)) * f32(sy))
        sampled = _bilinear(src, xs, ys)
        sampled = f32(sampled)  # sample.16.f writes back through float32
        t = f32(sampled - dst)
        t = f32(t * f32(ALPHA) + dst)
        t = f32(t + f32(0.5))
        t = f32(np.minimum(t, 255.0))
        t = f32(np.maximum(t, 0.0))
        return {"OUT": np.floor(t)}, state


def _bilinear(img: np.ndarray, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Edge-clamped bilinear sampling on a coordinate grid, mirroring
    :meth:`repro.memory.surface.Surface.sample_bilinear` arithmetic."""
    h, w = img.shape
    x0 = np.clip(np.floor(xs).astype(int), 0, w - 1)
    y0 = np.clip(np.floor(ys).astype(int), 0, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    y1 = np.minimum(y0 + 1, h - 1)
    fx = np.clip(xs - x0, 0.0, 1.0)[None, :]
    fy = np.clip(ys - y0, 0.0, 1.0)[:, None]
    p00 = img[np.ix_(y0, x0)]
    p10 = img[np.ix_(y0, x1)]
    p01 = img[np.ix_(y1, x0)]
    p11 = img[np.ix_(y1, x1)]
    top = p00 + (p10 - p00) * fx
    bot = p01 + (p11 - p01) * fx
    return top + (bot - top) * fy
