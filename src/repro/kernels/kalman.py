"""Kalman — "Video noise reduction filter" (Table 2).

Decomposition: 32x32 tiles.  512x256 gives 16 x 8 = 128 tiles per frame;
the paper's 4,096 total equals exactly 128 x 32, and the large
2048x1024 configuration's 65,536 equals (64 x 32) x 32 — so the counts
correspond to 32 processed frames (the table's prose says 30; we follow
the counts and note the discrepancy in EXPERIMENTS.md).

The filter is the classic steady-state per-pixel Kalman/IIR temporal
denoiser with gain K = 1/4 on 8-bit state, computed exactly in integer
arithmetic the way fixed-point video hardware does::

    state' = (3 * state + obs + 2) >> 2      # state + (obs-state)/4, rounded

The state surface doubles as the output frame and is updated *in place*,
so the recurrence carries across frames on the device exactly as in the
reference.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..isa.types import DataType
from .base import Geometry, MediaKernel, PaperConfig, SurfaceSpec
from .images import test_image, video_frames


class Kalman(MediaKernel):
    """Temporal noise reduction over 32x32 tiles.

    IA32 cost: per pixel the SSE path unpacks two byte streams to words,
    does a multiply-add, shift and repack — ~4.8 cycles/pixel with the
    load/store overhead of the in-place state stream; calibrated against
    the paper's mid-figure bar.
    """

    name = "Kalman"
    abbrev = "Kalman"
    block = (32, 32)
    cpu_cycles_per_pixel = 4.82
    cpu_bytes_per_pixel = 3.0  # state in + obs in + state out
    paper_speedup = 4.6

    def paper_configs(self) -> List[PaperConfig]:
        return [
            PaperConfig(Geometry(512, 256, frames=32), 4096,
                        note="table prose says 30 frames; counts match 32"),
            PaperConfig(Geometry(2048, 1024, frames=32), 65536,
                        note="table prose says 30 frames; counts match 32"),
        ]

    def constants(self, geom: Geometry) -> Dict[str, float]:
        return {"bh": float(self.block[1])}

    def surface_specs(self, geom: Geometry) -> Sequence[SurfaceSpec]:
        w, h = geom.width, geom.height
        return [
            SurfaceSpec("STATE", "state", DataType.UB, w, h),
            SurfaceSpec("OBS", "input", DataType.UB, w, h),
        ]

    def asm_source(self, geom: Geometry) -> str:
        return """
    mov.1.dw vr1 = 0
loop:
    add.1.dw vr2 = by, vr1
    ldblk.32x1.ub [vr10..vr11] = (STATE, bx, vr2)
    ldblk.32x1.ub [vr12..vr13] = (OBS, bx, vr2)
    mad.32.uw [vr14..vr15] = [vr10..vr11], 3, [vr12..vr13]
    add.32.uw [vr14..vr15] = [vr14..vr15], 2
    shr.32.uw [vr14..vr15] = [vr14..vr15], 2
    stblk.32x1.ub (STATE, bx, vr2) = [vr14..vr15]
    add.1.dw vr1 = vr1, 1
    cmp.lt.1.dw p1 = vr1, bh
    br p1, loop
    end
"""

    def make_frame_inputs(self, geom: Geometry, frame: int,
                          seed: int) -> Dict[str, np.ndarray]:
        frames = self._sequence(geom, seed)
        inputs = {"OBS": frames[frame % len(frames)]}
        if frame == 0:
            inputs["STATE"] = test_image(geom.width, geom.height, seed)
        return inputs

    def reference_frame(self, geom: Geometry, inputs: Dict[str, np.ndarray],
                        state: Dict) -> Tuple[Dict[str, np.ndarray], Dict]:
        prev = state.get("kalman", inputs.get("STATE"))
        obs = inputs["OBS"]
        new = np.floor((3.0 * prev + obs + 2.0) / 4.0)
        return {"STATE": new}, {"kalman": new}

    def _sequence(self, geom: Geometry, seed: int) -> list:
        key = (geom, seed)
        cache = getattr(self, "_seq_cache", None)
        if cache is None:
            cache = {}
            self._seq_cache = cache
        if key not in cache:
            cache[key] = video_frames(geom.width, geom.height,
                                      geom.frames, seed + 1)
        return cache[key]
