"""SepiaTone: "Modify RGB values to artificially age image" (Table 2).

Decomposition: 8x8 macroblocks (Table 2: 640x480 -> 4,800 shreds =
80 x 60 tiles; 2000x2000 -> 62,500 = 250 x 250).  Each shred loads the
three planar channels, applies the classic sepia matrix with saturation,
and stores three outputs — a straight-line shred, the "embarrassingly
parallel" shape the paper's fork-join pragma targets.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..isa.types import DataType
from .base import Geometry, MediaKernel, PaperConfig, SurfaceSpec, f32
from .images import rgb_image

#: The sepia transform matrix (rows: out R/G/B; cols: in R/G/B).
SEPIA = (
    (0.393, 0.769, 0.189),
    (0.349, 0.686, 0.168),
    (0.272, 0.534, 0.131),
)


class SepiaTone(MediaKernel):
    """RGB sepia toning on 8x8 macroblocks.

    IA32 cost: 9 multiplies + 6 adds + 3 clamps + pack/unpack per pixel.
    The SSE path (4 floats/op) lands around 8.8 cycles/pixel after the
    interleave overhead of planar loads; calibrated against the paper's
    ~4.2x Figure 7 bar.
    """

    name = "Sepia Tone"
    abbrev = "SepiaTone"
    block = (8, 8)
    cpu_cycles_per_pixel = 8.8
    cpu_bytes_per_pixel = 6.0  # 3 channels in + 3 out
    paper_speedup = 4.2

    def paper_configs(self) -> List[PaperConfig]:
        return [
            PaperConfig(Geometry(640, 480), 4800),
            PaperConfig(Geometry(2000, 2000), 62500),
        ]

    def surface_specs(self, geom: Geometry) -> Sequence[SurfaceSpec]:
        w, h = geom.width, geom.height
        return [
            SurfaceSpec("R", "input", DataType.UB, w, h),
            SurfaceSpec("G", "input", DataType.UB, w, h),
            SurfaceSpec("B", "input", DataType.UB, w, h),
            SurfaceSpec("OR", "output", DataType.UB, w, h),
            SurfaceSpec("OG", "output", DataType.UB, w, h),
            SurfaceSpec("OB", "output", DataType.UB, w, h),
        ]

    def asm_source(self, geom: Geometry) -> str:
        lines = [
            "    ldblk.8x8.ub [vr8..vr11]  = (R, bx, by)",
            "    ldblk.8x8.ub [vr12..vr15] = (G, bx, by)",
            "    ldblk.8x8.ub [vr16..vr19] = (B, bx, by)",
        ]
        outs = ("OR", "OG", "OB")
        for row, out in enumerate(outs):
            wr, wg, wb = SEPIA[row]
            lines += [
                f"    mul.64.f [vr20..vr23] = [vr8..vr11], {wr}",
                f"    mad.64.f [vr20..vr23] = [vr12..vr15], {wg}, [vr20..vr23]",
                f"    mad.64.f [vr20..vr23] = [vr16..vr19], {wb}, [vr20..vr23]",
                "    add.64.f [vr20..vr23] = [vr20..vr23], 0.5",
                "    min.64.f [vr20..vr23] = [vr20..vr23], 255.0",
                f"    stblk.8x8.ub ({out}, bx, by) = [vr20..vr23]",
            ]
        lines.append("    end")
        return "\n".join(lines)

    def make_frame_inputs(self, geom: Geometry, frame: int,
                          seed: int) -> Dict[str, np.ndarray]:
        return rgb_image(geom.width, geom.height, seed + frame)

    def reference_frame(self, geom: Geometry, inputs: Dict[str, np.ndarray],
                        state: Dict) -> Tuple[Dict[str, np.ndarray], Dict]:
        r, g, b = inputs["R"], inputs["G"], inputs["B"]
        out = {}
        for row, name in zip(SEPIA, ("OR", "OG", "OB")):
            # mirror the per-instruction float32 writeback of the .f ALU
            t = f32(f32(row[0]) * r)
            t = f32(f32(row[1]) * g + t)
            t = f32(f32(row[2]) * b + t)
            t = f32(t + f32(0.5))
            t = f32(np.minimum(t, 255.0))
            out[name] = np.floor(t)
        return out, state
