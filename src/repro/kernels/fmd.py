"""FMD — "Detect video cadence so inverse telecine can be applied"
(Table 2).

Decomposition: Table 2 reports 1,276 shreds for 60 frames of 720x480,
which factors as 58 x 22 — 22 column strips of 32 pixels
(floor(720 / 32) = 22; the 16 rightmost columns are ignored, as strip
hardware commonly does) over the 58 two-frames-apart comparison windows a
60-frame sequence yields.  All 1,276 shreds launch in a *single* parallel
region (one work-queue fill keeps the 32 exo-sequencers saturated across
window boundaries), so the whole video sequence lives in one stacked
surface.

Each shred accumulates the per-field sums of absolute differences between
frame *t* and frame *t+2* over its strip, storing the even-field and
odd-field SADs into a small result surface.  The host then reads the SAD
sequence and detects the 3:2 pulldown cadence (see
``examples/film_mode_detection.py``) — a tiny serial decision, exactly the
kind of work the paper leaves on the IA32 shred.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..isa.types import DataType
from .base import Geometry, MediaKernel, PaperConfig, SurfaceSpec
from .images import telecined_frames

STRIP = 32


class FMD(MediaKernel):
    """Per-strip field SADs for film-mode (cadence) detection.

    IA32 cost: PSADBW makes the SAD itself cheap on SSE, but the two-frame
    working set and strip-walk access pattern defeat the L2 and the
    hardware prefetcher; the end-to-end rate calibrates to ~3.6 cycles per
    compared pixel against the paper's mid-figure bar.
    """

    name = "Film Mode Detection"
    abbrev = "FMD"
    block = (STRIP, 0)  # column strips; grid overridden below
    cpu_cycles_per_pixel = 3.6
    cpu_bytes_per_pixel = 2.0
    paper_speedup = 5.2

    def paper_configs(self) -> List[PaperConfig]:
        return [PaperConfig(Geometry(720, 480, frames=60), 1276)]

    # -- decomposition: strips x comparison windows ------------------------------

    def strips(self, geom: Geometry) -> int:
        return geom.width // STRIP

    def check_geometry(self, geom: Geometry) -> None:
        problems = []
        if geom.width < STRIP:
            problems.append(f"width {geom.width} < strip width {STRIP}")
        if geom.frames < 3:
            problems.append(
                f"{geom.frames} frame(s): two-apart comparison windows "
                f"need at least 3")
        if problems:
            raise ValueError(f"FMD cannot execute {geom}: "
                             + "; ".join(problems))

    def windows(self, geom: Geometry) -> int:
        return max(geom.frames - 2, 1)

    def grid(self, geom: Geometry) -> Tuple[int, int]:
        return (self.strips(geom), self.windows(geom))

    def device_invocations(self, geom: Geometry) -> int:
        return 1  # one parallel region covers every comparison window

    def shred_count(self, geom: Geometry) -> int:
        return self.strips(geom) * self.windows(geom)

    def frame_shreds(self, geom: Geometry) -> int:
        return self.shred_count(geom)

    def shred_bindings(self, geom: Geometry):
        for w in range(self.windows(geom)):
            for s in range(self.strips(geom)):
                yield {"bx": float(s * STRIP), "sidx": float(s),
                       "win": float(w)}

    def constants(self, geom: Geometry) -> Dict[str, float]:
        return {"H": float(geom.height), "NS": float(self.strips(geom))}

    def surface_specs(self, geom: Geometry) -> Sequence[SurfaceSpec]:
        w, h = geom.width, geom.height
        return [
            SurfaceSpec("VIDEO", "input", DataType.UB, w, h * geom.frames),
            SurfaceSpec("RESULT", "output", DataType.DW,
                        self.strips(geom), 2 * self.windows(geom)),
        ]

    def asm_source(self, geom: Geometry) -> str:
        ns = self.strips(geom)
        h = geom.height
        return f"""
    mul.1.dw vr50 = win, H        # first row of frame t (prev)
    add.1.dw vr51 = vr50, {2 * h} # first row of frame t+2 (cur)
    mov.1.f vr60 = 0.0            # even-field SAD accumulator
    mov.1.f vr61 = 0.0            # odd-field SAD accumulator
    mov.1.dw vr1 = 0
evenloop:
    add.1.dw vr2 = vr50, vr1
    add.1.dw vr3 = vr51, vr1
    ldblk.32x1.ub [vr10..vr11] = (VIDEO, bx, vr3)
    ldblk.32x1.ub [vr12..vr13] = (VIDEO, bx, vr2)
    sub.32.f [vr14..vr15] = [vr10..vr11], [vr12..vr13]
    abs.32.f [vr14..vr15] = [vr14..vr15]
    hadd.32.f vr16 = [vr14..vr15]
    add.1.f vr60 = vr60, vr16
    add.1.dw vr1 = vr1, 2
    cmp.lt.1.dw p1 = vr1, H
    br p1, evenloop
    mov.1.dw vr1 = 1
oddloop:
    add.1.dw vr2 = vr50, vr1
    add.1.dw vr3 = vr51, vr1
    ldblk.32x1.ub [vr10..vr11] = (VIDEO, bx, vr3)
    ldblk.32x1.ub [vr12..vr13] = (VIDEO, bx, vr2)
    sub.32.f [vr14..vr15] = [vr10..vr11], [vr12..vr13]
    abs.32.f [vr14..vr15] = [vr14..vr15]
    hadd.32.f vr16 = [vr14..vr15]
    add.1.f vr61 = vr61, vr16
    add.1.dw vr1 = vr1, 2
    cmp.lt.1.dw p2 = vr1, H
    br p2, oddloop
    mul.1.dw vr55 = win, {2 * ns} # RESULT row pair for this window
    add.1.dw vr56 = vr55, sidx
    st.1.dw (RESULT, vr56, 0) = vr60
    st.1.dw (RESULT, vr56, {ns}) = vr61
    end
"""

    def make_frame_inputs(self, geom: Geometry, frame: int,
                          seed: int) -> Dict[str, np.ndarray]:
        frames = telecined_frames(geom.width, geom.height, geom.frames,
                                  seed + 1)
        return {"VIDEO": np.vstack(frames)}

    def reference_frame(self, geom: Geometry, inputs: Dict[str, np.ndarray],
                        state: Dict) -> Tuple[Dict[str, np.ndarray], Dict]:
        video = inputs["VIDEO"]
        h = geom.height
        ns = self.strips(geom)
        nw = self.windows(geom)
        result = np.zeros((2 * nw, ns), dtype=np.float64)
        for w in range(nw):
            prev = video[w * h : (w + 1) * h]
            cur = video[(w + 2) * h : (w + 3) * h]
            diff = np.abs(cur - prev)
            for s in range(ns):
                strip = diff[:, s * STRIP : (s + 1) * STRIP]
                result[2 * w, s] = strip[0::2].sum()
                result[2 * w + 1, s] = strip[1::2].sum()
        return {"RESULT": result}, {"sads": result}

    def cpu_pixels(self, geom: Geometry) -> int:
        # the IA32 path compares the same strip area per window
        return self.windows(geom) * self.strips(geom) * STRIP * geom.height
