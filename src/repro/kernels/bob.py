"""BOB — "De-interlace video by averaging nearby pixels within a field to
compute missing scanlines" (Table 2).

Decomposition: 80x48 output tiles, 90 per 720x480 frame, 2,700 shreds over
30 frames.  The input is one field (height H/2); kept scanlines are copied
and missing ones are the rounding average of the field rows above and
below.  The paper singles BOB out: "the least computationally intensive
... primarily bandwidth-bound" — 1.41X, the smallest Figure 7 speedup.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..isa.types import DataType
from .base import Geometry, MediaKernel, PaperConfig, SurfaceSpec
from .images import test_image


class BOB(MediaKernel):
    """Field-averaging de-interlacer.

    IA32 cost: one average and two row copies per output row pair — the
    SSE path is effectively a widening memcpy, under a cycle per pixel of ALU work and
    therefore limited purely by streaming bandwidth, which is why the CPU is nearly as fast
    as the accelerator here.
    """

    name = "De-interlace BOB Avg"
    abbrev = "BOB"
    block = (80, 48)
    cpu_cycles_per_pixel = 0.7
    cpu_bytes_per_pixel = 1.5  # 0.5 read + 1 write per output pixel
    paper_speedup = 1.41
    paper_speedup_exact = True

    def paper_configs(self) -> List[PaperConfig]:
        return [PaperConfig(Geometry(720, 480, frames=30), 2700)]

    def constants(self, geom: Geometry) -> Dict[str, float]:
        return {"bh2": float(self.block[1] // 2)}

    def surface_specs(self, geom: Geometry) -> Sequence[SurfaceSpec]:
        w, h = geom.width, geom.height
        if h % 2:
            raise ValueError("BOB needs an even frame height")
        return [
            SurfaceSpec("FIELD", "input", DataType.UB, w, h // 2),
            SurfaceSpec("OUT", "output", DataType.UB, w, h),
        ]

    def asm_source(self, geom: Geometry) -> str:
        return """
    shr.1.dw vr5 = by, 1        # first field row of this tile
    mov.1.dw vr1 = 0
loop:
    add.1.dw vr2 = vr5, vr1     # field row k
    add.1.dw vr3 = vr2, 1       # field row k+1 (edge-clamped)
    ldblk.80x1.ub [vr10..vr14] = (FIELD, bx, vr2)
    ldblk.80x1.ub [vr15..vr19] = (FIELD, bx, vr3)
    avg.80.uw [vr20..vr24] = [vr10..vr14], [vr15..vr19]
    shl.1.dw vr4 = vr2, 1       # output row 2k: the kept scanline
    stblk.80x1.ub (OUT, bx, vr4) = [vr10..vr14]
    add.1.dw vr4 = vr4, 1       # output row 2k+1: interpolated
    stblk.80x1.ub (OUT, bx, vr4) = [vr20..vr24]
    add.1.dw vr1 = vr1, 1
    cmp.lt.1.dw p1 = vr1, bh2
    br p1, loop
    end
"""

    def make_frame_inputs(self, geom: Geometry, frame: int,
                          seed: int) -> Dict[str, np.ndarray]:
        return {"FIELD": test_image(geom.width, geom.height // 2, seed + frame)}

    def reference_frame(self, geom: Geometry, inputs: Dict[str, np.ndarray],
                        state: Dict) -> Tuple[Dict[str, np.ndarray], Dict]:
        field = inputs["FIELD"]
        below = np.vstack([field[1:], field[-1:]])  # edge-clamped row k+1
        out = np.empty((geom.height, geom.width), dtype=np.float64)
        out[0::2] = field
        out[1::2] = np.floor((field + below + 1) / 2.0)
        return {"OUT": out}, state
