"""ADVDI — "Computationally intensive advanced de-interlacing filter with
motion detection" (Table 2).

Decomposition: 80x48 output tiles, 90 per 720x480 frame, 2,700 shreds over
30 frames.

Motion-adaptive de-interlacing: kept (even) scanlines copy through; for
each missing (odd) scanline pixel the kernel measures local motion against
the previous frame on the neighbouring kept lines and selects *weave*
(temporal: the previous frame's pixel) when still, or *bob* (spatial: the
average of the lines above and below) when moving — the cmp/sel
predication idiom the X3000 ISA is built for.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..isa.types import DataType
from .base import Geometry, MediaKernel, PaperConfig, SurfaceSpec, f32
from .images import video_frames

THRESHOLD = 24.0


class ADVDI(MediaKernel):
    """Motion-adaptive de-interlacer.

    IA32 cost: per missing pixel two absolute differences, an add, a
    compare and a blend over three input streams; the SSE path needs
    unpack/pack around the 8-bit compare trick — ~9 cycles per output
    pixel, the "computationally intensive" end of Table 2.
    """

    name = "Advanced De-interlacing"
    abbrev = "ADVDI"
    block = (80, 48)
    cpu_cycles_per_pixel = 9.0
    cpu_bytes_per_pixel = 3.0
    paper_speedup = 6.9

    def paper_configs(self) -> List[PaperConfig]:
        return [PaperConfig(Geometry(720, 480, frames=30), 2700)]

    def constants(self, geom: Geometry) -> Dict[str, float]:
        return {"bh": float(self.block[1]), "bw": float(self.block[0])}

    def surface_specs(self, geom: Geometry) -> Sequence[SurfaceSpec]:
        w, h = geom.width, geom.height
        return [
            SurfaceSpec("CUR", "input", DataType.UB, w, h),
            SurfaceSpec("PREV", "input", DataType.UB, w, h),
            SurfaceSpec("OUT", "output", DataType.UB, w, h),
        ]

    def asm_source(self, geom: Geometry) -> str:
        return f"""
    mov.1.dw vr1 = 0              # row cursor (step 2: one kept+one missing)
rowloop:
    add.1.dw vr2 = by, vr1        # kept row y
    add.1.dw vr3 = vr2, 1         # missing row y+1
    add.1.dw vr4 = vr2, 2         # next kept row y+2 (edge-clamped)
    ldblk.80x1.ub [vr10..vr14] = (CUR, bx, vr2)
    stblk.80x1.ub (OUT, bx, vr2) = [vr10..vr14]
    mov.1.dw vr5 = 0              # column-group cursor
colloop:
    add.1.dw vr6 = bx, vr5
    ldblk.16x1.ub vr20 = (CUR, vr6, vr2)    # cur[y]
    ldblk.16x1.ub vr21 = (PREV, vr6, vr2)   # prev[y]
    ldblk.16x1.ub vr22 = (CUR, vr6, vr4)    # cur[y+2]
    ldblk.16x1.ub vr23 = (PREV, vr6, vr4)   # prev[y+2]
    ldblk.16x1.ub vr24 = (PREV, vr6, vr3)   # prev[y+1]: weave candidate
    sub.16.f vr25 = vr20, vr21
    abs.16.f vr25 = vr25
    sub.16.f vr26 = vr22, vr23
    abs.16.f vr26 = vr26
    add.16.f vr25 = vr25, vr26              # motion metric
    avg.16.uw vr27 = vr20, vr22             # bob candidate
    cmp.lt.16.f p1 = vr25, {THRESHOLD}
    sel.16.f vr28 = p1, vr24, vr27
    stblk.16x1.ub (OUT, vr6, vr3) = vr28
    add.1.dw vr5 = vr5, 16
    cmp.lt.1.dw p2 = vr5, bw
    br p2, colloop
    add.1.dw vr1 = vr1, 2
    cmp.lt.1.dw p3 = vr1, bh
    br p3, rowloop
    end
"""

    def make_frame_inputs(self, geom: Geometry, frame: int,
                          seed: int) -> Dict[str, np.ndarray]:
        frames = self._sequence(geom, seed)
        cur = frames[(frame + 1) % len(frames)]
        prev = frames[frame % len(frames)]
        return {"CUR": cur, "PREV": prev}

    def reference_frame(self, geom: Geometry, inputs: Dict[str, np.ndarray],
                        state: Dict) -> Tuple[Dict[str, np.ndarray], Dict]:
        cur, prev = inputs["CUR"], inputs["PREV"]
        h, w = cur.shape
        out = np.empty_like(cur)
        out[0::2] = cur[0::2]
        for y in range(1, h, 2):
            y2 = min(y + 1, h - 1)
            up, upp = cur[y - 1], prev[y - 1]
            dn, dnp = cur[y2], prev[y2]
            motion = f32(f32(np.abs(f32(up - upp)))
                         + f32(np.abs(f32(dn - dnp))))
            bob = np.floor((up + dn + 1) / 2.0)
            weave = prev[y]
            out[y] = np.where(motion < THRESHOLD, weave, bob)
        return {"OUT": out}, state

    def _sequence(self, geom: Geometry, seed: int) -> list:
        key = (geom, seed)
        cache = getattr(self, "_seq_cache", None)
        if cache is None:
            cache = {}
            self._seq_cache = cache
        if key not in cache:
            cache[key] = video_frames(geom.width, geom.height,
                                      geom.frames + 1, seed + 1)
        return cache[key]
    # Kept rows are the even field; the last missing row's "below" tap
    # clamps to the final kept row, matching the block loader's behaviour.
