"""Kernel framework: the shape every Table 2 media kernel shares.

Each kernel supplies

* GMA X3000 inline assembly (what the paper's developers wrote inside the
  ``__asm`` blocks of CHI parallel regions), parameterized only through
  bound symbols — per-shred *private* values (tile coordinates) and
  *firstprivate* constants, exactly the binding model of Figure 6;
* the per-shred decomposition (Table 2's shred counts come from these
  tile grids);
* a numpy *reference* implementation, which serves two duties: it is the
  functional oracle the GMA result must match bit-for-bit, and it stands
  in for the paper's SSE-optimized IA32 baseline, whose cost the kernel
  describes via calibrated ``cpu_cycles_per_pixel`` /
  ``cpu_bytes_per_pixel`` (each kernel documents the derivation).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from ..cpu.ia32 import CpuWork
from ..isa.types import DataType


def f32(values) -> np.ndarray:
    """Round through IEEE single precision, as the GMA's ``.f`` ALU does.

    References mirror the accelerator's per-instruction float32 writeback
    (see :meth:`repro.isa.types.DataType.wrap`) so outputs match
    bit-for-bit even at rounding boundaries.
    """
    return np.asarray(np.asarray(values, dtype=np.float32), dtype=np.float64)


@dataclass(frozen=True)
class Geometry:
    """One evaluation configuration: frame size and frame count."""

    width: int
    height: int
    frames: int = 1

    def __post_init__(self):
        if self.width <= 0 or self.height <= 0 or self.frames <= 0:
            raise ValueError(f"invalid geometry {self}")

    @property
    def frame_pixels(self) -> int:
        return self.width * self.height

    @property
    def pixels(self) -> int:
        return self.frame_pixels * self.frames

    def __str__(self) -> str:
        base = f"{self.width}x{self.height}"
        return base if self.frames == 1 else f"{self.frames}f {base}"


@dataclass(frozen=True)
class SurfaceSpec:
    """One surface a kernel binds (the shared-clause variables)."""

    name: str
    role: str  # "input" | "output" | "state"
    dtype: DataType
    width: int
    height: int

    def __post_init__(self):
        if self.role not in ("input", "output", "state"):
            raise ValueError(f"unknown surface role {self.role!r}")


@dataclass(frozen=True)
class PaperConfig:
    """One Table 2 row: the geometry and the shred count the paper reports."""

    geometry: Geometry
    paper_shreds: int
    note: str = ""


class MediaKernel(abc.ABC):
    """Base class of the ten Table 2 media-processing kernels."""

    #: Full kernel name and the paper's abbreviation.
    name: str = ""
    abbrev: str = ""
    #: Shred tile size in output pixels (w, h).
    block: Tuple[int, int] = (8, 8)
    #: Calibrated IA32 cost (see class docstrings for derivations).
    cpu_cycles_per_pixel: float = 10.0
    cpu_bytes_per_pixel: float = 2.0
    #: Figure 7 bar for this kernel.  Exact for BOB (1.41) and Bicubic
    #: (10.97), read approximately off the figure for the rest.
    paper_speedup: float = 0.0
    paper_speedup_exact: bool = False

    # -- decomposition -----------------------------------------------------------

    def grid(self, geom: Geometry) -> Tuple[int, int]:
        """Tile grid (tiles_x, tiles_y) for one frame."""
        bw, bh = self.block
        return (-(-geom.width // bw), -(-geom.height // bh))

    def check_geometry(self, geom: Geometry) -> None:
        """Reject geometries the shred decomposition cannot execute.

        Shred tile shapes are fixed in the assembly (``ldblk.WxH``
        mnemonics), so executable frames must be tile-aligned; counting
        (``shred_count``) still works for any geometry via the ceil grid,
        which is how the Table 2 formulas handle the paper's non-aligned
        2000x2000 input.
        """
        bw, bh = self.block
        problems = []
        if bw > 0 and geom.width % bw:
            problems.append(f"width {geom.width} % tile width {bw} != 0")
        if bh > 0 and geom.height % bh:
            problems.append(f"height {geom.height} % tile height {bh} != 0")
        if problems:
            raise ValueError(
                f"{self.abbrev} cannot execute {geom}: "
                + "; ".join(problems)
                + " (pick a tile-aligned geometry)")

    def frame_shreds(self, geom: Geometry) -> int:
        tx, ty = self.grid(geom)
        return tx * ty

    def shred_count(self, geom: Geometry) -> int:
        """Total shreds for the full run (the Table 2 number)."""
        return self.frame_shreds(geom) * self.device_invocations(geom)

    def device_invocations(self, geom: Geometry) -> int:
        """How many parallel regions the run launches (one per frame)."""
        return geom.frames

    def shred_bindings(self, geom: Geometry) -> Iterator[Dict[str, float]]:
        """Per-shred private values for one frame (default: tile origins)."""
        bw, bh = self.block
        tx, ty = self.grid(geom)
        for j in range(ty):
            for i in range(tx):
                yield {"bx": float(i * bw), "by": float(j * bh)}

    def constants(self, geom: Geometry) -> Dict[str, float]:
        """Firstprivate constants shared by every shred."""
        return {}

    # -- kernel definition ----------------------------------------------------------

    @abc.abstractmethod
    def asm_source(self, geom: Geometry) -> str:
        """The GMA X3000 assembly for one shred."""

    @abc.abstractmethod
    def surface_specs(self, geom: Geometry) -> Sequence[SurfaceSpec]:
        """The surfaces one frame binds."""

    @abc.abstractmethod
    def make_frame_inputs(self, geom: Geometry, frame: int,
                          seed: int) -> Dict[str, np.ndarray]:
        """Input-surface contents for this frame (keyed by surface name)."""

    @abc.abstractmethod
    def reference_frame(self, geom: Geometry, inputs: Dict[str, np.ndarray],
                        state: Dict) -> Tuple[Dict[str, np.ndarray], Dict]:
        """Expected output-surface contents; threads ``state`` across frames."""

    def paper_configs(self) -> List[PaperConfig]:
        """Table 2 rows for this kernel."""
        return []

    # -- verification --------------------------------------------------------------

    def compare(self, name: str, got: np.ndarray, want: np.ndarray) -> None:
        """Raise AssertionError when a downloaded output mismatches.

        Pixel surfaces hold integer values and must match exactly; float
        state surfaces allow rounding slack (the CEH/proxy path may compute
        in a different precision order than numpy).
        """
        if got.shape != want.shape:
            raise AssertionError(
                f"{self.abbrev}: output {name!r} shape {got.shape} != "
                f"expected {want.shape}")
        close = np.isclose(got, want, rtol=1e-5, atol=1e-4)
        if not close.all():
            bad = tuple(np.argwhere(~close)[0])
            raise AssertionError(
                f"{self.abbrev}: output {name!r} mismatch at {bad}: "
                f"got {got[bad]}, want {want[bad]} "
                f"({(~close).sum()} of {close.size} elements differ)")

    # -- host cost model ----------------------------------------------------------------

    def cpu_pixels(self, geom: Geometry) -> int:
        return geom.pixels

    def cpu_work(self, geom: Geometry) -> CpuWork:
        pixels = self.cpu_pixels(geom)
        return CpuWork(
            pixels=pixels,
            cycles_per_pixel=self.cpu_cycles_per_pixel,
            bytes_touched=int(pixels * self.cpu_bytes_per_pixel),
        )

    # -- memory-model footprints (Figure 8) -------------------------------------------------

    def io_bytes_per_frame(self, geom: Geometry) -> Tuple[int, int]:
        """(input bytes, output bytes) a frame communicates with the GMA."""
        inp = out = 0
        for spec in self.surface_specs(geom):
            nbytes = spec.width * spec.height * spec.dtype.size
            if spec.role in ("input", "state"):
                inp += nbytes
            if spec.role == "output":
                out += nbytes
        return inp, out

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.abbrev}>"
