"""LinearFilter: "Compute output pixel as average of input pixel and eight
surrounding pixels" (Table 2) — a 3x3 box smoothing filter.

Decomposition: 8x6 macroblocks.  Table 2's 2000x2000 count reproduces
exactly: 250 x ceil(2000/6) = 250 x 334 = 83,500.  For 640x480 the same
grid gives 80 x 80 = 6,400 against the paper's 6,480 (the authors likely
processed a few halo rows; difference 1.25%, noted in EXPERIMENTS.md).

Border taps replicate edge pixels — both the GMA block loader
(:meth:`~repro.memory.surface.Surface.read_block`) and the reference
clamp, matching media-filter hardware convention.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..isa.types import DataType
from .base import Geometry, MediaKernel, PaperConfig, SurfaceSpec
from .images import test_image


class LinearFilter(MediaKernel):
    """3x3 box filter over 8x6 macroblocks.

    IA32 cost: the paper's version uses the SSE-enhanced Intel IPP box
    filter.  Per pixel: 9 loads (8 reused via row sums), 8 adds and one
    multiply-by-reciprocal; IPP achieves ~2.2 cycles/pixel per tap-row,
    ~9.8 cycles/pixel total including the unaligned-access penalty of
    the shifted rows (calibrated to the paper's ~5.5x bar).
    """

    name = "Linear Filter"
    abbrev = "LinearFilter"
    block = (8, 6)
    cpu_cycles_per_pixel = 9.8
    cpu_bytes_per_pixel = 2.0  # streaming read + write, rows cached
    paper_speedup = 5.5

    def paper_configs(self) -> List[PaperConfig]:
        return [
            PaperConfig(Geometry(640, 480), 6480,
                        note="our 8x6 grid gives 6,400 (-1.2%)"),
            PaperConfig(Geometry(2000, 2000), 83500),
        ]

    def surface_specs(self, geom: Geometry) -> Sequence[SurfaceSpec]:
        return [
            SurfaceSpec("SRC", "input", DataType.UB, geom.width, geom.height),
            SurfaceSpec("OUT", "output", DataType.UB, geom.width, geom.height),
        ]

    def asm_source(self, geom: Geometry) -> str:
        # nine 8x6 block loads at the 3x3 tap offsets, summed in uint16
        lines = [
            "    sub.1.dw vr1 = bx, 1",
            "    sub.1.dw vr2 = by, 1",
            "    add.1.dw vr3 = bx, 1",
            "    add.1.dw vr4 = by, 1",
        ]
        taps = [
            ("vr1", "vr2"), ("bx", "vr2"), ("vr3", "vr2"),
            ("vr1", "by"), ("bx", "by"), ("vr3", "by"),
            ("vr1", "vr4"), ("bx", "vr4"), ("vr3", "vr4"),
        ]
        base = 10
        for i, (x, y) in enumerate(taps):
            lo = base + i * 3
            lines.append(
                f"    ldblk.8x6.ub [vr{lo}..vr{lo + 2}] = (SRC, {x}, {y})")
        lines.append("    add.48.uw [vr40..vr42] = [vr10..vr12], [vr13..vr15]")
        for i in range(2, 9):
            lo = base + i * 3
            lines.append(
                f"    add.48.uw [vr40..vr42] = [vr40..vr42], [vr{lo}..vr{lo + 2}]")
        lines += [
            "    div.48.uw [vr40..vr42] = [vr40..vr42], 9",
            "    stblk.8x6.ub (OUT, bx, by) = [vr40..vr42]",
            "    end",
        ]
        return "\n".join(lines)

    def make_frame_inputs(self, geom: Geometry, frame: int,
                          seed: int) -> Dict[str, np.ndarray]:
        return {"SRC": test_image(geom.width, geom.height, seed + frame)}

    def reference_frame(self, geom: Geometry, inputs: Dict[str, np.ndarray],
                        state: Dict) -> Tuple[Dict[str, np.ndarray], Dict]:
        src = inputs["SRC"]
        padded = np.pad(src, 1, mode="edge")
        total = np.zeros_like(src)
        for dy in range(3):
            for dx in range(3):
                total = total + padded[dy : dy + src.shape[0],
                                       dx : dx + src.shape[1]]
        return {"OUT": np.floor(total / 9.0)}, state
