"""Run harness: execute a media kernel on the simulated EXO platform.

This is the glue the CHI runtime generates behind the paper's pragma
(spawn a team of shreds per frame, wait at the implied barrier) plus the
verification the paper's authors did by eyeball: the GMA output must match
the numpy reference exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..exo.shred import ShredDescriptor
from ..gma.device import GmaDevice
from ..isa.assembler import assemble
from ..isa.program import Program
from ..isa.tuning import resolve_schedule
from ..memory.address_space import AddressSpace
from ..memory.surface import Surface
from .base import Geometry, MediaKernel


@dataclass
class KernelRunResult:
    """Aggregate outcome of running every frame of one kernel config."""

    kernel: MediaKernel
    geometry: Geometry
    gma_cycles: float = 0.0
    instructions: int = 0
    shreds: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    atr_events: int = 0
    ceh_events: int = 0
    sampler_samples: int = 0
    frames_run: int = 0
    verified: bool = False
    bound: str = ""
    outputs: Dict[str, np.ndarray] = field(default_factory=dict)
    # engine counters (zero under the scalar engine)
    gang_lanes_retired: int = 0
    scalar_fallbacks: int = 0
    fused_blocks_retired: int = 0
    trace_chains: int = 0
    fusion_compiles: int = 0
    megaops_retired: int = 0
    megaop_compiles: int = 0
    megaop_deopts: int = 0
    gang_repacks: int = 0
    lanes_readmitted: int = 0
    #: Schedule-transform layer: the spec that was applied to the kernel
    #: program ("" when unscheduled, "baseline" when the tuner kept the
    #: original) and how many candidates the auto-tuner scored.
    schedule: str = ""
    tuner_trials: int = 0

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def gang_residency_pct(self) -> float:
        """Share of retired instructions that retired while ganged."""
        if not self.instructions:
            return 0.0
        return 100.0 * self.gang_lanes_retired / self.instructions


def build_program(kernel: MediaKernel, geom: Geometry,
                  schedule=None) -> Program:
    """Assemble the kernel's inline-assembly block for this geometry.

    ``schedule`` optionally transforms the result: ``None`` (as
    assembled), ``"auto"`` (tuner-picked), a spec string like
    ``"unroll4+stage_mem"``, or a
    :class:`~repro.isa.transforms.Schedule`.
    """
    program, _, _ = schedule_kernel_program(kernel, geom, schedule)
    return program


def schedule_kernel_program(kernel: MediaKernel, geom: Geometry,
                            schedule=None, verify: bool = False):
    """Build + schedule; returns ``(program, spec, tuner_trials)``.

    With ``verify=True`` the auto-tuner only accepts candidates that
    reproduce frame 0 bit-exactly on a scratch scalar device.
    """
    program = assemble(kernel.asm_source(geom), name=kernel.abbrev)
    verifier = (make_schedule_verifier(kernel, geom)
                if verify and schedule == "auto" else None)
    return resolve_schedule(program, schedule, kernel.constants(geom),
                            verifier=verifier)


def make_schedule_verifier(kernel: MediaKernel, geom: Geometry, seed: int = 0):
    """A tuner verify hook: candidate must match the numpy reference
    bit-exactly for frame 0 on a fresh scalar device."""
    def verify(program: Program) -> bool:
        space = AddressSpace()
        device = GmaDevice(space)
        surfaces = allocate_surfaces(kernel, geom, space)
        consts = kernel.constants(geom)
        inputs = kernel.make_frame_inputs(geom, 0, seed)
        for name, image in inputs.items():
            surfaces[name].upload(space, np.asarray(image))
        expected, _ = kernel.reference_frame(geom, inputs, {})
        shreds = [ShredDescriptor(program=program,
                                  bindings={**consts, **bindings},
                                  surfaces=surfaces)
                  for bindings in kernel.shred_bindings(geom)]
        try:
            device.run(shreds)
            for name, want in expected.items():
                kernel.compare(name, surfaces[name].download(space),
                               np.asarray(want))
        except Exception:
            return False
        return True
    return verify


def allocate_surfaces(kernel: MediaKernel, geom: Geometry,
                      space: AddressSpace) -> Dict[str, Surface]:
    return {
        spec.name: Surface.alloc(space, spec.name, spec.width, spec.height,
                                 spec.dtype)
        for spec in kernel.surface_specs(geom)
    }


def run_kernel_on_gma(kernel: MediaKernel, geom: Geometry,
                      device: Optional[GmaDevice] = None,
                      space: Optional[AddressSpace] = None,
                      seed: int = 0, verify: bool = True,
                      max_frames: Optional[int] = None,
                      schedule=None) -> KernelRunResult:
    """Execute the kernel's shreds on the GMA model, frame by frame.

    ``max_frames`` caps how many of ``geom.frames`` actually execute (the
    benchmarks run a frame or two and scale; cycle cost is per-frame
    uniform).  Functional verification compares every output surface
    against the kernel's reference for each executed frame.
    ``schedule`` selects a schedule transform for the kernel program
    (``None`` / ``"auto"`` / spec string / ``Schedule``); under
    ``"auto"`` the tuner's pick must reproduce frame 0 bit-exactly
    before it is accepted.
    """
    kernel.check_geometry(geom)
    space = space or AddressSpace()
    device = device or GmaDevice(space)
    program, spec, tuner_trials = schedule_kernel_program(
        kernel, geom, schedule, verify=True)
    surfaces = allocate_surfaces(kernel, geom, space)
    consts = kernel.constants(geom)

    result = KernelRunResult(kernel=kernel, geometry=geom,
                             schedule=spec, tuner_trials=tuner_trials)
    invocations = kernel.device_invocations(geom)
    frames = invocations if max_frames is None else min(invocations, max_frames)
    state: Dict = {}
    for frame in range(frames):
        inputs = kernel.make_frame_inputs(geom, frame, seed)
        for name, image in inputs.items():
            surfaces[name].upload(space, np.asarray(image))
        expected, state = kernel.reference_frame(geom, inputs, state)

        shreds = [
            ShredDescriptor(program=program,
                            bindings={**consts, **bindings},
                            surfaces=surfaces)
            for bindings in kernel.shred_bindings(geom)
        ]
        run = device.run(shreds)

        result.gma_cycles += run.cycles
        result.instructions += run.instructions
        result.shreds += run.shreds_executed
        result.bytes_read += run.bytes_read
        result.bytes_written += run.bytes_written
        result.atr_events += run.atr_events
        result.ceh_events += run.ceh_events
        result.sampler_samples += sum(r.sampler_samples for r in run.runs)
        result.gang_lanes_retired += getattr(run, "gang_lanes_retired", 0)
        result.scalar_fallbacks += getattr(run, "scalar_fallbacks", 0)
        result.fused_blocks_retired += getattr(run, "fused_blocks_retired", 0)
        result.trace_chains += getattr(run, "trace_chains", 0)
        result.fusion_compiles += getattr(run, "fusion_compiles", 0)
        result.megaops_retired += getattr(run, "megaops_retired", 0)
        result.megaop_compiles += getattr(run, "megaop_compiles", 0)
        result.megaop_deopts += getattr(run, "megaop_deopts", 0)
        result.gang_repacks += getattr(run, "gang_repacks", 0)
        result.lanes_readmitted += getattr(run, "lanes_readmitted", 0)
        result.bound = run.timing.bound
        result.frames_run += 1

        for name, want in expected.items():
            got = surfaces[name].download(space)
            result.outputs[name] = got
            if verify:
                kernel.compare(name, got, np.asarray(want))
    result.verified = verify
    return result


def scale_cycles_to_full_run(result: KernelRunResult) -> float:
    """Extrapolate measured cycles to the full device-invocation count."""
    if result.frames_run == 0:
        return 0.0
    per_frame = result.gma_cycles / result.frames_run
    return per_frame * result.kernel.device_invocations(result.geometry)
