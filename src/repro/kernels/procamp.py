"""ProcAmp: "Simple linear modification to YUV values for color
correction" (Table 2).

Decomposition: 80x48 output tiles, 90 per 720x480 frame, 2,700 shreds over
30 frames — the grid shared by all the video kernels in Table 2.

The processing-amplifier transform:

* luma:   Y' = clamp((Y - 16) * contrast + brightness + 16)
* chroma: C' = clamp((C - 128) * saturation + 128)

Each shred loops over its tile's rows, processing a full 80-pixel row of
each plane per iteration (chroma kept full-resolution for simplicity; the
cost model is per-pixel so subsampling would only rescale, not reshape).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..isa.types import DataType
from .base import Geometry, MediaKernel, PaperConfig, SurfaceSpec, f32
from .images import test_image

CONTRAST = 1.1875  # exactly representable in float32
BRIGHTNESS = 8.0
SATURATION = 1.25


class ProcAmp(MediaKernel):
    """Per-pixel linear YUV correction.

    IA32 cost: one subtract, one multiply-add and two clamps per sample,
    three planes; the SSE path is almost pure streaming — ~5.4 cycles per
    output pixel (1.8 per plane sample, unpack/mad/clamp/pack), which is why the paper's ProcAmp bar is among the lowest
    of the compute kernels.
    """

    name = "ProcAmp"
    abbrev = "ProcAmp"
    block = (80, 48)
    cpu_cycles_per_pixel = 5.4
    cpu_bytes_per_pixel = 6.0
    paper_speedup = 2.6

    def paper_configs(self) -> List[PaperConfig]:
        return [PaperConfig(Geometry(720, 480, frames=30), 2700)]

    def surface_specs(self, geom: Geometry) -> Sequence[SurfaceSpec]:
        w, h = geom.width, geom.height
        return [
            SurfaceSpec("Y", "input", DataType.UB, w, h),
            SurfaceSpec("U", "input", DataType.UB, w, h),
            SurfaceSpec("V", "input", DataType.UB, w, h),
            SurfaceSpec("YO", "output", DataType.UB, w, h),
            SurfaceSpec("UO", "output", DataType.UB, w, h),
            SurfaceSpec("VO", "output", DataType.UB, w, h),
        ]

    def constants(self, geom: Geometry) -> Dict[str, float]:
        return {"bh": float(self.block[1])}

    def asm_source(self, geom: Geometry) -> str:
        bw = self.block[0]
        regs = -(-bw // 16)
        ld = f"[vr10..vr{10 + regs - 1}]"
        acc = f"[vr20..vr{20 + regs - 1}]"
        plane = []
        for src, dst, bias, gain, offs in (
            ("Y", "YO", 16.0, CONTRAST, 16.0 + BRIGHTNESS),
            ("U", "UO", 128.0, SATURATION, 128.0),
            ("V", "VO", 128.0, SATURATION, 128.0),
        ):
            plane += [
                f"    ldblk.{bw}x1.ub {ld} = ({src}, bx, vr2)",
                f"    sub.{bw}.f {acc} = {ld}, {bias}",
                f"    mad.{bw}.f {acc} = {acc}, {gain}, {offs + 0.5}",
                f"    max.{bw}.f {acc} = {acc}, 0.0",
                f"    min.{bw}.f {acc} = {acc}, 255.0",
                f"    stblk.{bw}x1.ub ({dst}, bx, vr2) = {acc}",
            ]
        lines = (
            ["    mov.1.dw vr1 = 0", "loop:", "    add.1.dw vr2 = by, vr1"]
            + plane
            + [
                "    add.1.dw vr1 = vr1, 1",
                "    cmp.lt.1.dw p1 = vr1, bh",
                "    br p1, loop",
                "    end",
            ]
        )
        return "\n".join(lines)

    def make_frame_inputs(self, geom: Geometry, frame: int,
                          seed: int) -> Dict[str, np.ndarray]:
        return {
            "Y": test_image(geom.width, geom.height, seed + frame),
            "U": test_image(geom.width, geom.height, seed + frame + 100),
            "V": test_image(geom.width, geom.height, seed + frame + 200),
        }

    def reference_frame(self, geom: Geometry, inputs: Dict[str, np.ndarray],
                        state: Dict) -> Tuple[Dict[str, np.ndarray], Dict]:
        out = {}
        for src, dst, bias, gain, offs in (
            ("Y", "YO", 16.0, CONTRAST, 16.0 + BRIGHTNESS),
            ("U", "UO", 128.0, SATURATION, 128.0),
            ("V", "VO", 128.0, SATURATION, 128.0),
        ):
            t = f32(inputs[src] - f32(bias))
            t = f32(t * f32(gain) + f32(offs + 0.5))
            t = f32(np.maximum(t, 0.0))
            t = f32(np.minimum(t, 255.0))
            out[dst] = np.floor(t)
        return out, state
