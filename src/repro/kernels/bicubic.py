"""Bicubic — "Scale video using bicubic filter", 360x240 -> 720x480
(Table 2).

Decomposition: 80x48 *output* tiles (40x24 input tiles), 9 x 10 = 90 per
frame, 2,700 shreds over 30 frames.

Exact 2x upscaling makes the Catmull-Rom bicubic kernel's phases fixed:
even output samples coincide with input samples, odd samples use the
4-tap weights (-1/16, 9/16, 9/16, -1/16).  The shred computes, per
8-input-pixel column group and per input row, the horizontally filtered
pair (even lane = copy, odd lane = 4-tap), then the vertically filtered
output row pair, interleaving lanes with ``ilv`` before each 16-wide
store.  This burns registers the way the paper describes — "Bicubic
benefits ... from the number of general purpose registers (64 to 128)"
(section 5.1).

All arithmetic stays on multiples of 1/256 below 2^17, exactly
representable in float32, so the reference needs no rounding mirror.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..isa.types import DataType
from .base import Geometry, MediaKernel, PaperConfig, SurfaceSpec
from .images import test_image

W9 = 0.5625  # 9/16
WM = -0.0625  # -1/16


class Bicubic(MediaKernel):
    """Catmull-Rom 2x video upscaler.

    IA32 cost: per output pixel the SSE path averages 4 taps of filtering
    plus interleaving shuffles and round/pack; with the scattered row
    accesses it calibrates to ~21 cycles per output pixel — the most
    register- and compute-hungry kernel of the suite, matching its
    top-of-figure 10.97X.
    """

    name = "Bicubic Scaling"
    abbrev = "Bicubic"
    block = (80, 48)  # output-space tile
    cpu_cycles_per_pixel = 21.2
    cpu_bytes_per_pixel = 1.5
    paper_speedup = 10.97
    paper_speedup_exact = True

    def paper_configs(self) -> List[PaperConfig]:
        return [PaperConfig(Geometry(720, 480, frames=30), 2700)]

    def constants(self, geom: Geometry) -> Dict[str, float]:
        return {"bh2": float(self.block[1] // 2),
                "bw2": float(self.block[0] // 2)}

    def surface_specs(self, geom: Geometry) -> Sequence[SurfaceSpec]:
        w, h = geom.width, geom.height
        if w % 2 or h % 2:
            raise ValueError("Bicubic output geometry must be even")
        return [
            SurfaceSpec("SRC", "input", DataType.UB, w // 2, h // 2),
            SurfaceSpec("OUT", "output", DataType.UB, w, h),
        ]

    #: Input columns processed per inner-loop iteration (two 20-column
    #: groups cover the 40-input-column tile; each iteration emits a
    #: 40x2 output block).
    GROUP = 20

    def asm_source(self, geom: Geometry) -> str:
        # Registers: vr16-23 = source rows y-1..y+2 (even phase, 2 regs
        # per row), vr24-31 = horizontal 4-tap values (odd phase); the
        # working set deliberately spreads across ~32 vector registers —
        # "Bicubic benefits from the number of general purpose registers".
        g = self.GROUP
        g2 = 2 * g
        regs = -(-g // 16)  # registers per 20-element row group

        def rng(base: int) -> str:
            return f"[vr{base}..vr{base + regs - 1}]"

        def hfilter(dst: str, even: str) -> List[str]:
            return [
                f"    mul.{g}.f {dst} = {even}, {W9}",
                f"    mad.{g}.f {dst} = {rng(34)}, {W9}, {dst}",
                f"    mad.{g}.f {dst} = {rng(32)}, {WM}, {dst}",
                f"    mad.{g}.f {dst} = {rng(36)}, {WM}, {dst}",
            ]

        lines = [
            "    shr.1.dw vr14 = bx, 1      # input tile x",
            "    shr.1.dw vr15 = by, 1      # input tile y",
            "    mov.1.dw vr1 = 0           # input-row cursor",
            "rowloop:",
            "    add.1.dw vr3 = vr15, vr1   # input row y",
            "    sub.1.dw vr4 = vr3, 1",
            "    add.1.dw vr5 = vr3, 1",
            "    add.1.dw vr6 = vr3, 2",
            "    mov.1.dw vr2 = 0           # column-group cursor",
            "colloop:",
            "    add.1.dw vr7 = vr14, vr2   # x0",
            "    sub.1.dw vr8 = vr7, 1",
            "    add.1.dw vr9 = vr7, 1",
            "    add.1.dw vr10 = vr7, 2",
        ]
        rows = (("vr4", 16, 24), ("vr3", 18, 26), ("vr5", 20, 28),
                ("vr6", 22, 30))
        for yreg, even, odd in rows:
            lines += [
                f"    ldblk.{g}x1.ub {rng(even)} = (SRC, vr7, {yreg})",
                f"    ldblk.{g}x1.ub {rng(32)} = (SRC, vr8, {yreg})",
                f"    ldblk.{g}x1.ub {rng(34)} = (SRC, vr9, {yreg})",
                f"    ldblk.{g}x1.ub {rng(36)} = (SRC, vr10, {yreg})",
            ] + hfilter(rng(odd), rng(even))
        lines += [
            # vertical 4-tap for the odd output row, both phases
            f"    mul.{g}.f {rng(40)} = {rng(18)}, {W9}",
            f"    mad.{g}.f {rng(40)} = {rng(20)}, {W9}, {rng(40)}",
            f"    mad.{g}.f {rng(40)} = {rng(16)}, {WM}, {rng(40)}",
            f"    mad.{g}.f {rng(40)} = {rng(22)}, {WM}, {rng(40)}",
            f"    mul.{g}.f {rng(42)} = {rng(26)}, {W9}",
            f"    mad.{g}.f {rng(42)} = {rng(28)}, {W9}, {rng(42)}",
            f"    mad.{g}.f {rng(42)} = {rng(24)}, {WM}, {rng(42)}",
            f"    mad.{g}.f {rng(42)} = {rng(30)}, {WM}, {rng(42)}",
            # interleave, clamp, round, store the two output rows
            f"    ilv.{g2}.f [vr44..vr46] = {rng(18)}, {rng(26)}",
            f"    ilv.{g2}.f [vr48..vr50] = {rng(40)}, {rng(42)}",
            "    shl.1.dw vr11 = vr7, 1     # output x",
            "    shl.1.dw vr12 = vr3, 1     # output row 2y",
            "    add.1.dw vr13 = vr12, 1    # output row 2y+1",
        ]
        for base, yout in ((44, "vr12"), (48, "vr13")):
            reg = f"[vr{base}..vr{base + 2}]"
            lines += [
                f"    max.{g2}.f {reg} = {reg}, 0.0",
                f"    min.{g2}.f {reg} = {reg}, 255.0",
                f"    add.{g2}.f {reg} = {reg}, 0.5",
                f"    stblk.{g2}x1.ub (OUT, vr11, {yout}) = {reg}",
            ]
        lines += [
            f"    add.1.dw vr2 = vr2, {g}",
            "    cmp.lt.1.dw p1 = vr2, bw2",
            "    br p1, colloop",
            "    add.1.dw vr1 = vr1, 1",
            "    cmp.lt.1.dw p2 = vr1, bh2",
            "    br p2, rowloop",
            "    end",
        ]
        return "\n".join(lines)

    def make_frame_inputs(self, geom: Geometry, frame: int,
                          seed: int) -> Dict[str, np.ndarray]:
        return {"SRC": test_image(geom.width // 2, geom.height // 2,
                                  seed + frame)}

    def reference_frame(self, geom: Geometry, inputs: Dict[str, np.ndarray],
                        state: Dict) -> Tuple[Dict[str, np.ndarray], Dict]:
        src = inputs["SRC"]
        h2, w2 = src.shape
        padded = np.pad(src, ((1, 2), (1, 2)), mode="edge")

        def tap4(a, b, c, d):
            return WM * a + W9 * b + W9 * c + WM * d

        # horizontal pass: columns 1..w2 of the padded array are the
        # originals; odd phase filters x-1..x+2
        he = padded[:, 1 : 1 + w2]
        ho = tap4(padded[:, 0:w2], padded[:, 1 : 1 + w2],
                  padded[:, 2 : 2 + w2], padded[:, 3 : 3 + w2])
        hor = np.empty((h2 + 3, w2 * 2), dtype=np.float64)
        hor[:, 0::2] = he
        hor[:, 1::2] = ho
        # vertical pass: rows 1..h2 are the originals
        ve = hor[1 : 1 + h2]
        vo = tap4(hor[0:h2], hor[1 : 1 + h2], hor[2 : 2 + h2], hor[3 : 3 + h2])
        out = np.empty((h2 * 2, w2 * 2), dtype=np.float64)
        out[0::2] = ve
        out[1::2] = vo
        out = np.minimum(np.maximum(out, 0.0), 255.0) + 0.5
        return {"OUT": np.floor(out)}, state
