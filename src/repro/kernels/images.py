"""Deterministic synthetic image and video generators for the kernels.

The paper's inputs are production video frames we do not have; the kernels'
cost is data-independent, so seeded synthetic content exercises identical
code paths (see DESIGN.md, substitution table).  Generators return float64
arrays holding integer pixel values in [0, 255] unless noted.
"""

from __future__ import annotations

import numpy as np


def test_image(width: int, height: int, seed: int = 7) -> np.ndarray:
    """A natural-looking luminance image: gradients + texture + noise."""
    rng = np.random.default_rng(seed)
    y, x = np.mgrid[0:height, 0:width]
    base = 96 + 64 * np.sin(2 * np.pi * x / max(width / 3.0, 1))
    base += 48 * np.cos(2 * np.pi * y / max(height / 2.0, 1))
    noise = rng.integers(-24, 25, size=(height, width))
    img = np.clip(base + noise, 0, 255)
    return np.floor(img).astype(np.float64)


def rgb_image(width: int, height: int, seed: int = 7) -> dict:
    """Planar R/G/B channels of a synthetic colour image."""
    return {
        "R": test_image(width, height, seed),
        "G": test_image(width, height, seed + 1),
        "B": test_image(width, height, seed + 2),
    }


def video_frames(width: int, height: int, frames: int, seed: int = 7,
                 motion: int = 2) -> list:
    """Frames of a panning synthetic scene (consecutive frames correlate)."""
    panorama = test_image(width + motion * frames, height, seed)
    return [
        panorama[:, i * motion : i * motion + width].copy()
        for i in range(frames)
    ]


def telecined_frames(width: int, height: int, frames: int,
                     seed: int = 7) -> list:
    """A 3:2 pulldown (telecine) sequence for film-mode detection.

    Every group of 5 video frames is built from 2 film frames in the
    3:2 field pattern, so consecutive-frame field differences show the
    cadence FMD must detect.
    """
    film = video_frames(width, height, -(-frames * 2 // 5) + 2, seed, motion=4)
    out = []
    for i in range(frames):
        group, pos = divmod(i, 5)
        a = film[group * 2]
        b = film[group * 2 + 1]
        frame = a.copy()
        # 3:2 pattern: frames 0,1 pure A; 2 mixed; 3,4 pure B
        if pos == 2:
            frame[1::2] = b[1::2]
        elif pos >= 3:
            frame = b.copy()
        out.append(frame)
    return out


def noise_field(width: int, height: int, seed: int = 11) -> np.ndarray:
    """Uniform grain field centred at 128 (for FGT)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(height, width)).astype(np.float64)
