"""The Table 2 media-processing kernel suite.

Ten production-representative kernels, each with a GMA X3000 assembly
implementation (run on the device model) and a bit-exact numpy reference
standing in for the paper's SSE-optimized IA32 baseline.
"""

from .advdi import ADVDI
from .alpha_blend import AlphaBlend
from .base import Geometry, MediaKernel, PaperConfig, SurfaceSpec, f32
from .bicubic import Bicubic
from .bob import BOB
from .fgt import FGT
from .fmd import FMD
from .harness import (
    KernelRunResult,
    allocate_surfaces,
    build_program,
    run_kernel_on_gma,
    scale_cycles_to_full_run,
)
from .kalman import Kalman
from .linear_filter import LinearFilter
from .procamp import ProcAmp
from .sepia_tone import SepiaTone

#: The suite in the paper's Table 2 order.
ALL_KERNELS = (
    LinearFilter,
    SepiaTone,
    FGT,
    Bicubic,
    Kalman,
    FMD,
    AlphaBlend,
    BOB,
    ADVDI,
    ProcAmp,
)


def kernel_by_abbrev(abbrev: str) -> MediaKernel:
    """Instantiate a kernel by its Table 2 abbreviation."""
    for cls in ALL_KERNELS:
        if cls.abbrev.lower() == abbrev.lower():
            return cls()
    raise KeyError(f"no kernel named {abbrev!r}; have "
                   f"{[c.abbrev for c in ALL_KERNELS]}")


__all__ = [
    "ALL_KERNELS",
    "kernel_by_abbrev",
    "MediaKernel",
    "Geometry",
    "PaperConfig",
    "SurfaceSpec",
    "f32",
    "KernelRunResult",
    "run_kernel_on_gma",
    "build_program",
    "allocate_surfaces",
    "scale_cycles_to_full_run",
    "LinearFilter",
    "SepiaTone",
    "FGT",
    "Bicubic",
    "Kalman",
    "FMD",
    "AlphaBlend",
    "BOB",
    "ADVDI",
    "ProcAmp",
]
