"""FGT — Film Grain Technology: "Apply artificial film grain filter from
H.264 standard" (Table 2).

Decomposition: full-width strips of 8 rows; 1024x768 -> 96 shreds, exactly
Table 2's count.  The H.264 FGT SEI pipeline synthesizes a grain field and
blends it onto the decoded picture; the synthesis (seeded pseudo-random
block transform) is precomputed into a GRAIN input surface — what the
hardware pipeline's grain database stage produces — and the shreds perform
the blending stage: ``out = clamp(src + strength * (grain - 128))``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..isa.types import DataType
from .base import Geometry, MediaKernel, PaperConfig, SurfaceSpec, f32
from .images import noise_field, test_image

STRENGTH = 0.25


class FGT(MediaKernel):
    """Film-grain blending over 8-row strips.

    IA32 cost: the paper's FGT uses the IPP path; per pixel one subtract,
    one multiply-add, two clamps over two input streams — but the strip
    working set defeats the L1, so the calibrated IPP rate is ~6.8 cycles
    per pixel.
    """

    name = "Film Grain Technology"
    abbrev = "FGT"
    block = (0, 8)  # full-width strips; grid overridden below
    cpu_cycles_per_pixel = 6.8
    cpu_bytes_per_pixel = 3.0
    paper_speedup = 6.5

    def paper_configs(self) -> List[PaperConfig]:
        return [PaperConfig(Geometry(1024, 768), 96)]

    def grid(self, geom: Geometry) -> Tuple[int, int]:
        return (1, -(-geom.height // self.block[1]))

    def check_geometry(self, geom: Geometry) -> None:
        problems = []
        if geom.width % 16:
            problems.append(f"width {geom.width} % 16 != 0 (strip loop step)")
        if geom.height % self.block[1]:
            problems.append(f"height {geom.height} % {self.block[1]} != 0")
        if problems:
            raise ValueError(f"FGT cannot execute {geom}: "
                             + "; ".join(problems))

    def shred_bindings(self, geom: Geometry):
        for j in range(self.grid(geom)[1]):
            yield {"by": float(j * self.block[1])}

    def constants(self, geom: Geometry) -> Dict[str, float]:
        return {"W": float(geom.width)}

    def surface_specs(self, geom: Geometry) -> Sequence[SurfaceSpec]:
        w, h = geom.width, geom.height
        return [
            SurfaceSpec("SRC", "input", DataType.UB, w, h),
            SurfaceSpec("GRAIN", "input", DataType.UB, w, h),
            SurfaceSpec("OUT", "output", DataType.UB, w, h),
        ]

    def asm_source(self, geom: Geometry) -> str:
        return f"""
    mov.1.dw vr1 = 0                # x cursor
loop:
    ldblk.16x8.ub [vr10..vr17] = (SRC, vr1, by)
    ldblk.16x8.ub [vr20..vr27] = (GRAIN, vr1, by)
    sub.128.f [vr30..vr37] = [vr20..vr27], 128.0
    mad.128.f [vr30..vr37] = [vr30..vr37], {STRENGTH}, [vr10..vr17]
    max.128.f [vr30..vr37] = [vr30..vr37], 0.0
    min.128.f [vr30..vr37] = [vr30..vr37], 255.0
    add.128.f [vr30..vr37] = [vr30..vr37], 0.5
    min.128.f [vr30..vr37] = [vr30..vr37], 255.0
    stblk.16x8.ub (OUT, vr1, by) = [vr30..vr37]
    add.1.dw vr1 = vr1, 16
    cmp.lt.1.dw p1 = vr1, W
    br p1, loop
    end
"""

    def make_frame_inputs(self, geom: Geometry, frame: int,
                          seed: int) -> Dict[str, np.ndarray]:
        return {
            "SRC": test_image(geom.width, geom.height, seed + frame),
            "GRAIN": noise_field(geom.width, geom.height, seed + frame + 50),
        }

    def reference_frame(self, geom: Geometry, inputs: Dict[str, np.ndarray],
                        state: Dict) -> Tuple[Dict[str, np.ndarray], Dict]:
        src, grain = inputs["SRC"], inputs["GRAIN"]
        t = f32(grain - f32(128.0))
        t = f32(t * f32(STRENGTH) + src)
        t = f32(np.maximum(t, 0.0))
        t = f32(np.minimum(t, 255.0))
        t = f32(t + f32(0.5))
        t = f32(np.minimum(t, 255.0))
        return {"OUT": np.floor(t)}, state
