"""Exception hierarchy for the EXOCHI reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching Python built-ins.

Two families deserve note because they model *architectural* events rather
than programming mistakes:

* :class:`TranslationFault` and :class:`TlbMiss` model the address
  translation events that drive EXO's Address Translation Remapping (ATR,
  paper section 3.2).  They are raised by the memory substrate, caught by
  the exoskeleton, and serviced by proxy execution on the IA32 sequencer.
* :class:`ExecutionFault` and its subclasses model accelerator exceptions
  that drive Collaborative Exception Handling (CEH, paper section 3.3).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# ISA / toolchain errors
# ---------------------------------------------------------------------------


class AssemblyError(ReproError):
    """A syntactic or semantic error in accelerator assembly text."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class EncodingError(ReproError):
    """Failure to encode or decode a binary instruction stream."""


class FatBinaryError(ReproError):
    """Malformed fat binary, or a requested code section is missing."""


# ---------------------------------------------------------------------------
# Memory-system events and errors
# ---------------------------------------------------------------------------


class MemorySystemError(ReproError):
    """Base class for memory-substrate failures."""


class OutOfPhysicalMemory(MemorySystemError):
    """The physical frame allocator is exhausted."""


class TlbMiss(MemorySystemError):
    """A sequencer's TLB has no entry for the accessed virtual page.

    This is an *architectural event*, not a bug: the exoskeleton catches it
    and requests proxy execution on the OS-managed sequencer (ATR).

    ``vaddrs`` lists every missing page address when one access spans
    several unmapped pages, so ATR can service them in a single batched
    proxy round trip instead of one round trip per page.
    """

    def __init__(self, vaddr: int, sequencer: str = "?",
                 vaddrs: tuple | None = None):
        self.vaddr = vaddr
        self.sequencer = sequencer
        self.vaddrs = tuple(vaddrs) if vaddrs else (vaddr,)
        super().__init__(f"TLB miss at vaddr {vaddr:#x} on sequencer {sequencer}")

    def __reduce__(self):
        # default exception pickling would re-call __init__ with the
        # formatted message as ``vaddr``; rebuild from the real fields so
        # the fault survives a worker-pipe crossing intact
        return (type(self), (self.vaddr, self.sequencer, self.vaddrs))


class TranslationFault(MemorySystemError):
    """The page tables have no mapping for the accessed virtual address."""

    def __init__(self, vaddr: int, write: bool = False):
        self.vaddr = vaddr
        self.write = write
        kind = "write" if write else "read"
        super().__init__(f"page fault ({kind}) at vaddr {vaddr:#x}")

    def __reduce__(self):
        return (type(self), (self.vaddr, self.write))


class CoherenceViolation(MemorySystemError):
    """Strict non-coherent-mode check: a sequencer read data another
    sequencer holds dirty in its cache without an intervening flush.

    On the real non-cache-coherent platform this read would return stale
    bytes; the simulator surfaces the protocol bug instead of silently
    returning coherent data.
    """


class ProtectionFault(MemorySystemError):
    """An access violated a page's protection bits (e.g. write to RO)."""

    def __init__(self, vaddr: int, write: bool):
        self.vaddr = vaddr
        self.write = write
        kind = "write" if write else "read"
        super().__init__(f"protection fault ({kind}) at vaddr {vaddr:#x}")

    def __reduce__(self):
        return (type(self), (self.vaddr, self.write))


# ---------------------------------------------------------------------------
# Accelerator execution faults (handled via CEH)
# ---------------------------------------------------------------------------


class ExecutionFault(ReproError):
    """An exception raised by an executing exo-sequencer shred.

    Carries enough context (instruction, lane) for the CEH proxy handler on
    the IA32 sequencer to emulate the faulting operation and patch the
    result back into the exo-sequencer state.
    """

    def __init__(self, message: str, instruction=None, lane: int | None = None):
        self.instruction = instruction
        self.lane = lane
        super().__init__(message)


class DivideByZeroFault(ExecutionFault):
    """Integer or floating divide by zero on an exo-sequencer."""


class FpOverflowFault(ExecutionFault):
    """Floating-point overflow that the exo-sequencer cannot complete."""


class UnsupportedOperationFault(ExecutionFault):
    """The exo-sequencer lacks hardware for this operation.

    The paper's motivating case: double-precision vector arithmetic, which
    the GMA X3000 must ship to the IA32 core for IEEE-compliant handling.
    """


class IllegalInstructionFault(ExecutionFault):
    """An undecodable or malformed instruction reached execution."""


# ---------------------------------------------------------------------------
# CHI environment errors
# ---------------------------------------------------------------------------


class ChiError(ReproError):
    """Base class for CHI programming-environment errors."""


class DescriptorError(ChiError):
    """Invalid use of the surface-descriptor APIs (Table 1)."""


class SchedulingError(ChiError):
    """The CHI runtime could not schedule or dispatch shreds."""


class FabricError(SchedulingError):
    """A fabric worker process failed: it died mid-drain, broke the pipe
    protocol, or could not be set up (e.g. no shared-memory backing).

    Raised on the *parent* side so a crashed worker surfaces as a clean
    error on the launch that needed it, never as a hang on a dead pipe.
    """


class PragmaError(ChiError):
    """An OpenMP pragma extension is malformed or uses unknown clauses."""


class DebuggerError(ChiError):
    """Invalid debugger request (unknown breakpoint, no active shred, ...)."""


# ---------------------------------------------------------------------------
# Serving-layer errors
# ---------------------------------------------------------------------------


class ServingError(ChiError):
    """Base class for multi-tenant serving-layer failures."""


class QuotaExceeded(ServingError):
    """A session asked for more surfaces/bytes/descriptors than its quota."""


class AdmissionRejected(ServingError):
    """The admission controller refused a launch (RAISE policy overload).

    ``retry_after`` is the controller's estimate, in seconds, of when
    capacity will free up — clients back off that long before retrying.
    """

    def __init__(self, message: str, retry_after: float = 0.0):
        self.retry_after = retry_after
        super().__init__(message)

    def __reduce__(self):
        return (type(self), (self.args[0], self.retry_after))


class SessionClosed(ServingError):
    """An operation was attempted on a closed session."""


# ---------------------------------------------------------------------------
# CHI C front-end errors
# ---------------------------------------------------------------------------


class FrontendError(ReproError):
    """Base class for mini-C front-end failures, with source position."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.line = line
        self.col = col
        if line is not None:
            pos = f"{line}" if col is None else f"{line}:{col}"
            message = f"{pos}: {message}"
        super().__init__(message)


class LexError(FrontendError):
    """Invalid token in CHI C source."""


class ParseError(FrontendError):
    """Syntax error in CHI C source."""


class SemanticError(FrontendError):
    """Type or binding error in CHI C source."""
