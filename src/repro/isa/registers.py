"""Architectural register state of one exo-sequencer thread context."""

from __future__ import annotations

import numpy as np

from .types import NUM_PREGS, NUM_VREGS, VLEN


class RegisterFile:
    """Vector + predicate register state for one shred.

    Lanes are stored as float64 regardless of the operating element type;
    each instruction's :meth:`~repro.isa.types.DataType.wrap` applies the
    type's range semantics on writeback.  This keeps the interpreter simple
    while preserving integer wrap-around behaviour.
    """

    def __init__(self, num_vregs: int = NUM_VREGS, vlen: int = VLEN):
        if num_vregs < 1 or vlen < 1:
            raise ValueError("register file dimensions must be positive")
        self.num_vregs = num_vregs
        self.vlen = vlen
        self._v = np.zeros((num_vregs, vlen), dtype=np.float64)
        self._p = np.zeros((NUM_PREGS, vlen), dtype=bool)

    # -- vector registers ---------------------------------------------------

    def read_lanes(self, reg: int, count: int, lane: int = 0) -> np.ndarray:
        """Read ``count`` lanes of register ``reg`` starting at ``lane``."""
        self._check_vreg(reg)
        if lane + count > self.vlen:
            raise IndexError(
                f"lane range {lane}..{lane + count} exceeds vector length {self.vlen}"
            )
        return self._v[reg, lane : lane + count].copy()

    def write_lanes(self, reg: int, values: np.ndarray, lane: int = 0) -> None:
        self._check_vreg(reg)
        values = np.asarray(values, dtype=np.float64)
        if lane + values.size > self.vlen:
            raise IndexError(
                f"lane range {lane}..{lane + values.size} exceeds vector "
                f"length {self.vlen}"
            )
        self._v[reg, lane : lane + values.size] = values

    def read_scalar(self, reg: int) -> float:
        """Read lane 0 of a register (scalar view)."""
        self._check_vreg(reg)
        return float(self._v[reg, 0])

    def write_scalar(self, reg: int, value: float) -> None:
        self._check_vreg(reg)
        self._v[reg, 0] = float(value)

    # -- register ranges ----------------------------------------------------

    def read_range(self, start: int, stop: int) -> np.ndarray:
        """Read the range ``[vrstart..vrstop]`` as one element per register.

        This is the operand form in the paper's Figure 6:
        ``add.8.dw [vr18..vr25] = ...`` treats each named register as one
        element of an 8-wide vector (lane 0 of each register).
        """
        self._check_range(start, stop)
        return self._v[start : stop + 1, 0].copy()

    def write_range(self, start: int, stop: int, values: np.ndarray) -> None:
        self._check_range(start, stop)
        values = np.asarray(values, dtype=np.float64)
        if values.size != stop - start + 1:
            raise ValueError(
                f"range [vr{start}..vr{stop}] holds {stop - start + 1} elements, "
                f"got {values.size}"
            )
        self._v[start : stop + 1, 0] = values

    def read_block(self, start: int, count: int) -> np.ndarray:
        """Read ``count`` elements packed across full registers (16/reg).

        Block loads (``ldblk``) pack a macroblock row-major across all lanes
        of consecutive registers.
        """
        nregs = -(-count // self.vlen)
        self._check_range(start, start + nregs - 1)
        return self._v[start : start + nregs].reshape(-1)[:count].copy()

    def write_block(self, start: int, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        nregs = -(-values.size // self.vlen)
        self._check_range(start, start + nregs - 1)
        padded = np.zeros(nregs * self.vlen, dtype=np.float64)
        padded[: values.size] = values
        self._v[start : start + nregs] = padded.reshape(nregs, self.vlen)

    # -- predicate registers ------------------------------------------------

    def read_pred(self, index: int, count: int) -> np.ndarray:
        self._check_preg(index)
        if count > self.vlen:
            raise IndexError(f"predicate width {count} exceeds {self.vlen}")
        return self._p[index, :count].copy()

    def write_pred(self, index: int, values: np.ndarray) -> None:
        self._check_preg(index)
        values = np.asarray(values, dtype=bool)
        if values.size > self.vlen:
            raise IndexError(f"predicate width {values.size} exceeds {self.vlen}")
        self._p[index, : values.size] = values
        self._p[index, values.size :] = False

    def pred_any(self, index: int) -> bool:
        self._check_preg(index)
        return bool(self._p[index].any())

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        self._v.fill(0.0)
        self._p.fill(False)

    def snapshot(self) -> dict:
        """A copy of all register state, for the debugger and CEH."""
        return {"v": self._v.copy(), "p": self._p.copy()}

    def restore(self, snap: dict) -> None:
        self._v[:] = snap["v"]
        self._p[:] = snap["p"]

    # -- internal -----------------------------------------------------------

    def _check_vreg(self, reg: int) -> None:
        if not 0 <= reg < self.num_vregs:
            raise IndexError(f"vr{reg} out of range (file has {self.num_vregs})")

    def _check_range(self, start: int, stop: int) -> None:
        if stop < start:
            raise IndexError(f"empty register range [vr{start}..vr{stop}]")
        self._check_vreg(start)
        self._check_vreg(stop)

    def _check_preg(self, index: int) -> None:
        if not 0 <= index < NUM_PREGS:
            raise IndexError(f"p{index} out of range (file has {NUM_PREGS})")
