"""Exo-style schedulable transforms over assembled accelerator programs.

EXOCHI's CHI compiler shipped hand-tuned kernels; the fusion and megaop
tiers of this reproduction only pay off on shapes the kernel author
happened to write fusably.  This module closes that gap with *schedules*:
semantics-preserving rewrites applied to an assembled :class:`Program`,
in the spirit of Exo/SYS_ATL user-schedulable languages —

* :func:`unroll` — peel a counted loop's body ``factor`` times so the
  superblock fuser and the megaop trace recorder see longer
  straight-line traces (and fewer ``cmp``/``br`` retirements);
* :func:`split` — restructure a counted loop into an outer/inner nest
  (the classic strip-mine shape, useful before unrolling the inner);
* :func:`reorder` — block-local list scheduling, delegated to
  :func:`repro.isa.scheduler.schedule_program`;
* :func:`stage_mem` — merge adjacent-row ``ldblk``/``stblk`` pairs into
  taller blocks and hoist scalar ``ld``/``st`` chains into one ranged
  ``BATCH_MEM``-eligible access (fewer memory-op dispatches, which is
  where flat kernels spend their time);
* :func:`replace` — map recognizable idiom fragments onto the dedicated
  ISA ops (``add/add/shr`` → ``avg``, ``mul/add`` → ``mad``), each
  rewrite double-checked by a random-state fragment differential.

Every primitive returns a **fresh** :class:`Program`: transforms rewrite
at the structured-line level (labels + :class:`Instruction` objects),
re-emit assembly text through each instruction's round-trippable
``__str__``, and re-assemble — so labels, branch targets, validation and
reconvergence annotations are recomputed from scratch and the predecode
cache never aliases a transformed program with its source.

Legality envelope (documented in ``docs/SCHEDULE.md``): address
arithmetic is reasoned about symbolically assuming coordinate values
stay within their integer dtype's range (no wrap-around), which holds
for any program whose block coordinates land in or near surface bounds.
End-to-end bit-exactness versus the untransformed program is enforced by
the four-engine differential suite and by the auto-tuner's verify hook.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace as _dc_replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import ReproError
from .assembler import assemble
from .instructions import Instruction
from .opcodes import Condition, Opcode
from .operands import (
    BlockOperand,
    ImmOperand,
    MemOperand,
    Operand,
    PredOperand,
    RangeOperand,
    RegOperand,
    SymOperand,
)
from .program import Program
from .registers import RegisterFile
from .scheduler import instruction_effects, schedule_program
from .types import NUM_PREGS, NUM_VREGS, VLEN, DataType


class ScheduleError(ReproError):
    """A schedule primitive could not be applied legally."""


_TERMINATORS = (Opcode.JMP, Opcode.BR, Opcode.END)
#: Affine reasoning only trusts arithmetic whose wrap point is far away.
_WIDE_INT_TYPES = (DataType.DW, DataType.UDW)


# ---------------------------------------------------------------------------
# structured-line representation: label strings + Instruction objects
# ---------------------------------------------------------------------------

def _to_items(program: Program) -> List[object]:
    """Flatten a program into a list of label names and instructions."""
    by_index: Dict[int, List[str]] = {}
    for name, idx in program.labels.items():
        by_index.setdefault(idx, []).append(name)
    items: List[object] = []
    for idx, instr in enumerate(program.instructions):
        for name in sorted(by_index.get(idx, [])):
            items.append(name)
        items.append(instr)
    trailing = sorted(by_index.get(len(program.instructions), []))
    if trailing:
        for name in trailing:
            items.append(name)
        items.append(Instruction(opcode=Opcode.NOP))
    return items


def _emit(items: Sequence[object], name: str) -> Program:
    """Re-assemble structured lines into a fresh, validated Program."""
    lines: List[str] = []
    for item in items:
        if isinstance(item, str):
            lines.append(f"{item}:")
        else:
            lines.append(f"    {item}")
    program = assemble("\n".join(lines) + "\n", name=name)
    program.validate()
    return program


def _instr_item_index(items: Sequence[object]) -> Dict[int, int]:
    """Map instruction ip -> index into the items list."""
    out: Dict[int, int] = {}
    ip = 0
    for pos, item in enumerate(items):
        if isinstance(item, Instruction):
            out[ip] = pos
            ip += 1
    return out


# ---------------------------------------------------------------------------
# counted-loop recognition
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CountedLoop:
    """A recognized ``mov init / ... / add step / cmp bound / br`` loop."""

    label: str
    head: int          # ip of the first body instruction (the label target)
    back: int          # ip of the backedge ``br``
    cmp_ip: int        # ip of the trip-test ``cmp``
    add_ip: int        # ip of the induction-step ``add``
    ind: int           # induction vreg
    pred: int          # predicate register of the backedge test
    init: float
    step: float
    bound: Optional[float]   # resolved bound, None when the symbol is unbound
    cond: Condition
    trip: Optional[int]      # iteration count, None when bound is unknown
    depth: int = 0           # nesting depth (0 = outermost)
    innermost: bool = True

    @property
    def body(self) -> Tuple[int, int]:
        """Half-open ip range of the loop body (excludes add/cmp/br)."""
        return (self.head, self.add_ip)


def _resolve_bound(op: Operand, bindings: Optional[Dict[str, float]]):
    if isinstance(op, ImmOperand):
        return float(op.value)
    if isinstance(op, SymOperand) and bindings and op.name in bindings:
        return float(bindings[op.name])
    return None


def _trip_count(init: float, step: float, bound: Optional[float],
                cond: Condition) -> Optional[int]:
    """How many times does the do-while body run?  (Body runs at least once.)"""
    if bound is None or step <= 0:
        return None
    take = {Condition.LT: lambda v: v < bound,
            Condition.LE: lambda v: v <= bound}.get(cond)
    if take is None:
        return None
    value, trips = init, 0
    while True:
        trips += 1
        value += step
        if not take(value):
            return trips
        if trips > 1_000_000:
            return None


def find_counted_loops(program: Program,
                       bindings: Optional[Dict[str, float]] = None
                       ) -> List[CountedLoop]:
    """Recognize every well-formed counted loop in the program.

    Shape (the idiom every CHI kernel uses)::

        mov.1.<ty>  ind = <init>       # last write to ind before the label
    label:
        <straight-line body>           # no labels, no branches, no ind/pred writes
        add.1.<ty>  ind = ind, <step>  # positive immediate step
        cmp.lt.1.<ty> pK = ind, <bound>
        br pK, label                   # the only branch targeting label
    """
    instrs = program.instructions
    branch_targets: Dict[str, List[int]] = {}
    for ip, instr in enumerate(instrs):
        if instr.opcode in (Opcode.BR, Opcode.JMP):
            target = instr.srcs[-1]
            branch_targets.setdefault(getattr(target, "name", ""), []).append(ip)

    loops: List[CountedLoop] = []
    for label, head in program.labels.items():
        sites = branch_targets.get(label, [])
        if len(sites) != 1:
            continue
        back = sites[0]
        if back < head + 3 or back >= len(instrs):
            continue
        br = instrs[back]
        if (br.opcode is not Opcode.BR or br.pred is None or br.pred.negate):
            continue
        cmp_ip, add_ip = back - 1, back - 2
        cmp, add = instrs[cmp_ip], instrs[add_ip]
        if (cmp.opcode is not Opcode.CMP or cmp.width != 1
                or cmp.pred is not None or cmp.cond is None
                or not cmp.dsts or not isinstance(cmp.dsts[0], PredOperand)
                or cmp.dsts[0].index != br.pred.index
                or not isinstance(cmp.srcs[0], RegOperand)):
            continue
        if (add.opcode is not Opcode.ADD or add.width != 1
                or add.pred is not None
                or not isinstance(add.dsts[0], RegOperand)
                or not isinstance(add.srcs[0], RegOperand)
                or not isinstance(add.srcs[1], ImmOperand)):
            continue
        ind = add.dsts[0].reg
        if add.srcs[0].reg != ind or cmp.srcs[0].reg != ind:
            continue
        step = float(add.srcs[1].value)
        if step <= 0:
            continue
        # no label may point inside the loop (head itself excepted)
        if any(head < idx <= back for idx in program.labels.values()):
            continue
        # writes to ind: exactly the step add plus one immediate init before
        ind_writes = [ip for ip, ins in enumerate(instrs)
                      if ind in instruction_effects(ins).reg_defs]
        pre = [ip for ip in ind_writes if ip < head]
        if not pre or any(head <= ip < add_ip or ip > add_ip
                          for ip in ind_writes if ip != add_ip):
            continue
        init_ip = max(pre)
        init_instr = instrs[init_ip]
        if (init_instr.opcode is not Opcode.MOV or init_instr.width != 1
                or init_instr.pred is not None
                or not isinstance(init_instr.srcs[0], ImmOperand)):
            continue
        init = float(init_instr.srcs[0].value)
        # body must be straight-line and must not touch the loop predicate
        body = instrs[head:add_ip]
        if any(ins.opcode in _TERMINATORS for ins in body):
            continue
        if any(br.pred.index in
               (instruction_effects(ins).pred_defs
                | instruction_effects(ins).pred_uses)
               for ins in body):
            continue
        bound = _resolve_bound(cmp.srcs[1], bindings)
        trip = _trip_count(init, step, bound, cmp.cond)
        loops.append(CountedLoop(
            label=label, head=head, back=back, cmp_ip=cmp_ip, add_ip=add_ip,
            ind=ind, pred=br.pred.index, init=init, step=step, bound=bound,
            cond=cmp.cond, trip=trip))

    loops.sort(key=lambda lp: lp.head)
    out: List[CountedLoop] = []
    for lp in loops:
        depth = sum(1 for other in loops
                    if other is not lp
                    and other.head <= lp.head and lp.back <= other.back)
        inner = not any(other is not lp
                        and lp.head <= other.head and other.back <= lp.back
                        for other in loops)
        out.append(CountedLoop(**{**lp.__dict__, "depth": depth,
                                  "innermost": inner}))
    return out


def _loop_by_label(program: Program, label: str,
                   bindings: Optional[Dict[str, float]]) -> CountedLoop:
    for lp in find_counted_loops(program, bindings):
        if lp.label == label:
            return lp
    raise ScheduleError(
        f"{program.name}: no counted loop at label {label!r} "
        f"(need the mov/body/add/cmp/br idiom)")


def _pred_read_outside(program: Program, pindex: int,
                       allowed: Set[int]) -> bool:
    """Is predicate ``pK`` consumed anywhere outside the allowed ips?"""
    for ip, instr in enumerate(program.instructions):
        if ip in allowed:
            continue
        eff = instruction_effects(instr)
        if pindex in eff.pred_uses:
            return True
    return False


# ---------------------------------------------------------------------------
# free-register discovery
# ---------------------------------------------------------------------------

def _used_vregs(program: Program) -> Set[int]:
    used: Set[int] = set()
    for instr in program.instructions:
        eff = instruction_effects(instr)
        used |= eff.reg_uses | eff.reg_defs
    return used


def _used_pregs(program: Program) -> Set[int]:
    used: Set[int] = set()
    for instr in program.instructions:
        eff = instruction_effects(instr)
        used |= eff.pred_uses | eff.pred_defs
    return used


def _free_vreg_block(program: Program, count: int, *,
                     reserved: Set[int] = frozenset()) -> int:
    """First register of ``count`` consecutive vregs the program never uses.

    A register the program never touches is dead everywhere, so any gap
    in the used set is fair game — not just the space above the
    high-water mark.  Repeated staging passes on an unrolled body would
    otherwise exhaust the file long before it is actually full.
    """
    used = _used_vregs(program) | set(reserved)
    run_start = 0
    run = 0
    for reg in range(NUM_VREGS):
        if reg in used:
            run_start, run = reg + 1, 0
            continue
        run += 1
        if run == count:
            return run_start
    raise ScheduleError(
        f"{program.name}: needs {count} consecutive staging registers "
        f"but the largest free run is smaller")


def _free_preg(program: Program) -> int:
    used = _used_pregs(program)
    top = max(used, default=-1) + 1
    if top >= NUM_PREGS:
        raise ScheduleError(f"{program.name}: no free predicate register")
    return top


def _fresh_label(program: Program, base: str) -> str:
    name = base
    n = 2
    while name in program.labels:
        name = f"{base}{n}"
        n += 1
    return name


# ---------------------------------------------------------------------------
# unroll / split / reorder
# ---------------------------------------------------------------------------

def unroll(program: Program, label: str, factor: int,
           bindings: Optional[Dict[str, float]] = None) -> Program:
    """Peel the counted loop at ``label`` into ``factor`` copies per trip.

    Exact unrolling: the trip count must be known (immediate bound, or a
    symbol resolved through ``bindings``) and divisible by ``factor``, so
    the rewritten loop runs ``trip / factor`` times with the body (and the
    induction step) repeated ``factor`` times.  Intermediate ``cmp``
    results existed only to feed the backedge, so dropping them is
    invisible — which the recognizer guarantees by rejecting loops whose
    predicate is read anywhere else.
    """
    if factor < 2:
        raise ScheduleError(f"unroll factor must be >= 2, got {factor}")
    lp = _loop_by_label(program, label, bindings)
    if lp.trip is None:
        raise ScheduleError(
            f"{program.name}: loop {label!r} bound is not statically known; "
            f"bind the symbol or use an immediate bound")
    if lp.trip % factor:
        raise ScheduleError(
            f"{program.name}: loop {label!r} trip count {lp.trip} is not "
            f"divisible by {factor}")
    if _pred_read_outside(program, lp.pred, {lp.back, lp.cmp_ip}):
        raise ScheduleError(
            f"{program.name}: loop {label!r} predicate p{lp.pred} is read "
            f"outside the backedge; unrolling would change it")

    items = _to_items(program)
    index = _instr_item_index(items)
    start, stop = index[lp.head], index[lp.back]
    body_and_step = [program.instructions[ip]
                     for ip in range(lp.head, lp.cmp_ip)]
    replacement: List[object] = []
    for _ in range(factor):
        replacement.extend(body_and_step)
    replacement.append(program.instructions[lp.cmp_ip])
    replacement.append(program.instructions[lp.back])
    new_items = items[:start] + replacement + items[stop + 1:]
    return _emit(new_items, program.name)


def split(program: Program, label: str, factor: int,
          bindings: Optional[Dict[str, float]] = None) -> Program:
    """Strip-mine the counted loop at ``label`` by ``factor``.

    The body is wrapped in a fresh inner loop running ``factor`` times
    per outer trip (a new counter in a never-used vreg/preg, so no live
    state is disturbed); the original test becomes the outer backedge.
    Requires ``factor`` to divide the trip count exactly.
    """
    if factor < 2:
        raise ScheduleError(f"split factor must be >= 2, got {factor}")
    lp = _loop_by_label(program, label, bindings)
    if lp.trip is None:
        raise ScheduleError(
            f"{program.name}: loop {label!r} bound is not statically known")
    if lp.trip % factor:
        raise ScheduleError(
            f"{program.name}: loop {label!r} trip count {lp.trip} is not "
            f"divisible by {factor}")
    if _pred_read_outside(program, lp.pred, {lp.back, lp.cmp_ip}):
        raise ScheduleError(
            f"{program.name}: loop {label!r} predicate p{lp.pred} is read "
            f"outside the backedge")

    counter = _free_vreg_block(program, 1)
    inner_pred = _free_preg(program)
    inner_label = _fresh_label(program, f"{label}__inner")

    items = _to_items(program)
    index = _instr_item_index(items)
    start, stop = index[lp.head], index[lp.back]
    body_and_step = [program.instructions[ip]
                     for ip in range(lp.head, lp.cmp_ip)]
    replacement: List[object] = [
        Instruction(Opcode.MOV, width=1, dtype=DataType.DW,
                    dsts=(RegOperand(counter),), srcs=(ImmOperand(0.0),)),
        inner_label,
        *body_and_step,
        Instruction(Opcode.ADD, width=1, dtype=DataType.DW,
                    dsts=(RegOperand(counter),),
                    srcs=(RegOperand(counter), ImmOperand(1.0))),
        Instruction(Opcode.CMP, width=1, dtype=DataType.DW,
                    cond=Condition.LT,
                    dsts=(PredOperand(inner_pred),),
                    srcs=(RegOperand(counter), ImmOperand(float(factor)))),
        _branch(inner_pred, inner_label),
        program.instructions[lp.cmp_ip],
        program.instructions[lp.back],
    ]
    new_items = items[:start] + replacement + items[stop + 1:]
    return _emit(new_items, program.name)


def _branch(pindex: int, label: str) -> Instruction:
    from .instructions import Predication
    from .operands import LabelOperand
    return Instruction(Opcode.BR,
                       pred=Predication(index=pindex),
                       srcs=(LabelOperand(label),))


def reorder(program: Program) -> Program:
    """Block-local list scheduling (labels and semantics preserved)."""
    scheduled = schedule_program(program)
    # re-emit so the transformed program carries honest source text
    return _emit(_to_items(scheduled), program.name)


# ---------------------------------------------------------------------------
# symbolic scalar values (for stage_mem address reasoning)
# ---------------------------------------------------------------------------

#: A symbolic scalar value: (base token, constant offset).  Base tokens:
#:   ("const",)        — pure constant, value lives in the offset
#:   ("sym", name)     — a bound launch symbol (constant per shred)
#:   ("entry", reg)    — reg's value at entry to the current block
#:   ("def", ip)       — whatever the (opaque) def at ip last produced
_Value = Tuple[tuple, float]


def _block_ranges(program: Program) -> List[Tuple[int, int]]:
    n = len(program.instructions)
    leaders = {0, n} | set(program.labels.values())
    for ip, instr in enumerate(program.instructions):
        if instr.opcode in _TERMINATORS:
            leaders.add(ip + 1)
    marks = sorted(m for m in leaders if 0 <= m <= n)
    return [(a, b) for a, b in zip(marks, marks[1:]) if b > a]


def _block_graph(program: Program):
    """Block ranges, ip->block map, and block successor lists."""
    ranges = _block_ranges(program)
    block_of = {}
    for bi, (a, b) in enumerate(ranges):
        for ip in range(a, b):
            block_of[ip] = bi
    start_block = {a: bi for bi, (a, _) in enumerate(ranges)}
    succs: List[List[int]] = []
    for bi, (a, b) in enumerate(ranges):
        last = program.instructions[b - 1]
        nxt: List[int] = []
        if last.opcode in (Opcode.BR, Opcode.JMP):
            target = start_block.get(program.target(last.srcs[-1].name))
            if target is not None:
                nxt.append(target)
            if ((last.opcode is Opcode.BR or last.pred is not None)
                    and b < len(program.instructions)):
                nxt.append(start_block[b])
        elif last.opcode is Opcode.END:
            nxt = []
        elif b < len(program.instructions):
            nxt = [start_block[b]]
        succs.append(nxt)
    return ranges, block_of, succs


def _block_dominators(ranges, succs) -> List[Set[int]]:
    n = len(ranges)
    preds: List[List[int]] = [[] for _ in range(n)]
    for bi, out in enumerate(succs):
        for s in out:
            preds[s].append(bi)
    full = set(range(n))
    dom: List[Set[int]] = [{0}] + [set(full) for _ in range(n - 1)]
    changed = True
    while changed:
        changed = False
        for bi in range(1, n):
            incoming = [dom[p] for p in preds[bi]]
            new = (set.intersection(*incoming) if incoming else set(full)) | {bi}
            if new != dom[bi]:
                dom[bi] = new
                changed = True
    return dom


class _ScalarValues:
    """Symbolic values of scalar registers, one basic block at a time.

    Intra-block affine tracking (``mov``/``add``/``sub`` of wide-int
    width-1 instructions) plus cross-block resolution through chains of
    *single-definition* registers whose defining block dominates the use
    — sound because a single-def chain re-establishes the same affine
    relation on every execution of its (straight-line) defining block.
    """

    def __init__(self, program: Program):
        self.program = program
        self.ranges, self.block_of, succs = _block_graph(program)
        self.dom = _block_dominators(self.ranges, succs)
        self.defs_by_reg: Dict[int, List[int]] = {}
        for ip, instr in enumerate(program.instructions):
            for reg in instruction_effects(instr).reg_defs:
                self.defs_by_reg.setdefault(reg, []).append(ip)
        self.env: Dict[int, _Value] = {}
        self.block = -1

    def start_block(self, block_index: int) -> None:
        self.block = block_index
        self.env = {}

    def step(self, ip: int) -> None:
        """Account for the instruction at ``ip`` (call after resolving)."""
        instr = self.program.instructions[ip]
        affine = self._affine(instr)
        defs = instruction_effects(instr).reg_defs
        if affine is not None:
            reg, value = affine
            for d in defs:
                self.env[d] = (("def", ip), 0.0)
            self.env[reg] = value
            return
        for d in defs:
            self.env[d] = (("def", ip), 0.0)

    def value(self, op: Operand) -> Optional[_Value]:
        if isinstance(op, ImmOperand):
            return (("const",), float(op.value))
        if isinstance(op, SymOperand):
            return (("sym", op.name), 0.0)
        if isinstance(op, RegOperand):
            return self._reg_value(op.reg)
        return None

    def _reg_value(self, reg: int) -> _Value:
        if reg in self.env:
            return self.env[reg]
        return self._entry_value(reg, self.block, depth=0)

    def _affine(self, instr: Instruction) -> Optional[Tuple[int, _Value]]:
        """(reg, value) when the instruction is a trackable scalar def."""
        if (instr.pred is not None or instr.width != 1 or not instr.dsts
                or not isinstance(instr.dsts[0], RegOperand)):
            return None
        reg = instr.dsts[0].reg
        if instr.opcode is Opcode.MOV:
            src = self.value(instr.srcs[0])
            return (reg, src) if src is not None else None
        if instr.dtype not in _WIDE_INT_TYPES:
            return None
        if instr.opcode in (Opcode.ADD, Opcode.SUB) and len(instr.srcs) == 2:
            a, b = instr.srcs
            sign = -1.0 if instr.opcode is Opcode.SUB else 1.0
            va, vb = self.value(a), self.value(b)
            if va is not None and vb is not None:
                if vb[0] == ("const",):
                    return (reg, (va[0], va[1] + sign * vb[1]))
                if instr.opcode is Opcode.ADD and va[0] == ("const",):
                    return (reg, (vb[0], vb[1] + va[1]))
                if instr.opcode is Opcode.ADD:
                    # symbolic sum of two opaque terms, canonically ordered
                    base = ("sum",) + tuple(sorted((va[0], vb[0]), key=repr))
                    return (reg, (base, va[1] + vb[1]))
        return None

    def _entry_value(self, reg: int, use_block: int, depth: int) -> _Value:
        opaque = (("entry", reg), 0.0)
        if depth > 8:
            return opaque
        ips = self.defs_by_reg.get(reg, [])
        if len(ips) != 1:
            return opaque
        d = ips[0]
        instr = self.program.instructions[d]
        def_block = self.block_of[d]
        if def_block == use_block or def_block not in self.dom[use_block]:
            return opaque
        if (instr.pred is not None or instr.width != 1 or not instr.dsts
                or not isinstance(instr.dsts[0], RegOperand)):
            return (("def", d), 0.0)
        form = self._chain_form(instr)
        if form is None:
            return (("def", d), 0.0)
        src, delta = form
        if isinstance(src, ImmOperand):
            return (("const",), float(src.value) + delta)
        if isinstance(src, SymOperand):
            return (("sym", src.name), delta)
        if isinstance(src, RegOperand):
            r2 = src.reg
            ips2 = self.defs_by_reg.get(r2, [])
            if (len(ips2) == 1 and self.block_of[ips2[0]] == def_block
                    and ips2[0] < d):
                base, off = self._entry_value(r2, use_block, depth + 1)
                if base == ("entry", r2):
                    # the recursion bottomed out without an anchor; pin the
                    # chain to this def instead so relatives still compare
                    return (("def", ips2[0]), delta)
                return (base, off + delta)
            return (("def", d), 0.0)
        return (("def", d), 0.0)

    def _chain_form(self, instr: Instruction):
        """Affine form (src operand, delta) of a single-def instruction."""
        if instr.opcode is Opcode.MOV:
            src = instr.srcs[0]
            if isinstance(src, (ImmOperand, SymOperand, RegOperand)):
                return (src, 0.0)
            return None
        if instr.dtype not in _WIDE_INT_TYPES:
            return None
        if instr.opcode in (Opcode.ADD, Opcode.SUB) and len(instr.srcs) == 2:
            a, b = instr.srcs
            sign = -1.0 if instr.opcode is Opcode.SUB else 1.0
            if isinstance(a, (SymOperand, RegOperand)) and isinstance(b, ImmOperand):
                return (a, sign * float(b.value))
            if (instr.opcode is Opcode.ADD and isinstance(a, ImmOperand)
                    and isinstance(b, (SymOperand, RegOperand))):
                return (b, float(a.value))
        return None


# ---------------------------------------------------------------------------
# stage_mem: block-row merging and scalar chain staging
# ---------------------------------------------------------------------------

@dataclass
class _BlockAccess:
    ip: int
    instr: Instruction
    store: bool
    surface: str
    x_value: _Value
    y_value: _Value
    w: int
    h: int
    dtype: DataType

    @property
    def elems(self) -> int:
        return self.w * self.h


@dataclass
class _ScalarAccess:
    ip: int
    instr: Instruction
    store: bool
    surface: str
    index_value: _Value   # base token + (index offset + operand offset)
    reg: int              # dst (load) / value (store) register
    dtype: DataType


def stage_mem(program: Program) -> Program:
    """Merge adjacent memory accesses into wider ``BATCH_MEM`` ops.

    Two rewrites, applied to fixpoint:

    * adjacent-row ``ldblk``/``stblk`` merging — same surface, same x,
      provably consecutive y rows become one taller block access
      (legal unconditionally for loads because ``read_block`` clamps
      each row independently, and for stores because every merged row
      was in bounds already);
    * scalar ``ld``/``st`` chain staging — runs of width-1 accesses at
      consecutive element indices into consecutive registers become one
      ranged per-register access.

    Values and addresses that must survive the move are captured into
    never-used staging registers with ``mov.N.df`` copies (``mov`` never
    touches the FP datapath, so ``.df`` is an exact float64 lane copy
    and CEH-free on the exo-sequencers).

    Once merging reaches fixpoint the staging round-trips are cleaned
    up: copies are forwarded into their readers and the ones that die
    are deleted (see ``_forward_copies``); cleanup can expose further
    merges, so the two interleave until neither finds work.
    """
    out = program
    for _ in range(64):
        nxt = _stage_mem_once(out)
        if nxt is None:
            nxt = _forward_copies(out)
            if nxt is None:
                return out
        out = nxt
    return out


def _stage_mem_once(program: Program) -> Optional[Program]:
    """Apply the first profitable merge found, or None at fixpoint."""
    values = _ScalarValues(program)
    for bi, (a, b) in enumerate(values.ranges):
        values.start_block(bi)
        blocks: List[_BlockAccess] = []
        scalars: List[_ScalarAccess] = []
        for ip in range(a, b):
            instr = program.instructions[ip]
            acc = _classify_access(instr, ip, values)
            if isinstance(acc, _BlockAccess):
                blocks.append(acc)
            elif isinstance(acc, _ScalarAccess):
                scalars.append(acc)
            values.step(ip)
        rewritten = (_merge_block_run(program, blocks)
                     or _merge_scalar_run(program, scalars))
        if rewritten is not None:
            return rewritten
    return None


def _classify_access(instr: Instruction, ip: int, values: _ScalarValues):
    if instr.pred is not None:
        return None
    if instr.opcode is Opcode.LDBLK:
        target, store = instr.srcs[0], False
    elif instr.opcode is Opcode.STBLK:
        target, store = instr.srcs[0], True
    elif instr.opcode in (Opcode.LD, Opcode.ST) and instr.width == 1:
        mem = instr.srcs[0] if instr.opcode is Opcode.ST else instr.srcs[0]
        if not isinstance(mem, MemOperand):
            return None
        idx = values.value(mem.index)
        if idx is None:
            return None
        reg_op = (instr.srcs[1] if instr.opcode is Opcode.ST
                  else instr.dsts[0])
        if not isinstance(reg_op, RegOperand):
            return None
        return _ScalarAccess(
            ip=ip, instr=instr, store=instr.opcode is Opcode.ST,
            surface=mem.surface,
            index_value=(idx[0], idx[1] + mem.offset),
            reg=reg_op.reg, dtype=instr.dtype)
    else:
        return None
    if not isinstance(target, BlockOperand) or instr.block is None:
        return None
    xv, yv = values.value(target.x), values.value(target.y)
    if xv is None or yv is None:
        return None
    return _BlockAccess(ip=ip, instr=instr, store=store,
                        surface=target.surface, x_value=xv, y_value=yv,
                        w=instr.block[0], h=instr.block[1],
                        dtype=instr.dtype)


def _span_blockers(program: Program, lo: int, hi: int, member_ips: Set[int],
                   surface: str, *, stores_matter: bool) -> bool:
    """Anything between the run members that forbids moving them?"""
    for ip in range(lo, hi + 1):
        if ip in member_ips:
            continue
        eff = instruction_effects(program.instructions[ip])
        if eff.barrier:
            return True
        if surface in eff.mem_writes:
            return True
        if stores_matter and surface in eff.mem_reads:
            return True
    return False


def _regs_defined_in(program: Program, lo: int, hi: int,
                     exclude: Set[int]) -> Set[int]:
    defs: Set[int] = set()
    for ip in range(lo, hi + 1):
        if ip in exclude:
            continue
        defs |= instruction_effects(program.instructions[ip]).reg_defs
    return defs


def _regs_touched_in(program: Program, lo: int, hi: int,
                     exclude: Set[int]) -> Set[int]:
    touched: Set[int] = set()
    for ip in range(lo, hi + 1):
        if ip in exclude:
            continue
        eff = instruction_effects(program.instructions[ip])
        touched |= eff.reg_uses | eff.reg_defs
    return touched


def _operand_reg_set(op: Operand) -> Set[int]:
    if isinstance(op, RegOperand):
        return {op.reg}
    if isinstance(op, RangeOperand):
        return set(range(op.start, op.stop + 1))
    return set()


def _packed_regs(op: Operand) -> Optional[List[int]]:
    """Registers of a packed-form operand, in packing order."""
    if isinstance(op, RegOperand):
        return [op.reg]
    if isinstance(op, RangeOperand):
        return list(range(op.start, op.stop + 1))
    return None


def _merge_block_run(program: Program,
                     accesses: List[_BlockAccess]) -> Optional[Program]:
    # x-adjacent single-row blocks first (same y, consecutive x spans):
    # widening a row keeps the packed layout contiguous, and wider rows
    # then become eligible for the taller y-merge below
    x_groups: Dict[tuple, List[_BlockAccess]] = {}
    for acc in accesses:
        if acc.h != 1 or acc.w % VLEN:
            continue
        key = (acc.store, acc.surface, acc.x_value[0], acc.y_value,
               acc.dtype)
        x_groups.setdefault(key, []).append(acc)
    for members in x_groups.values():
        members.sort(key=lambda m: m.x_value[1])
        run: List[_BlockAccess] = []
        for acc in members + [None]:
            if (acc is not None and run
                    and acc.x_value[1] == run[-1].x_value[1] + run[-1].w):
                run.append(acc)
                continue
            if len(run) >= 2:
                rewritten = _try_block_merge(program, run, axis="x")
                if rewritten is not None:
                    return rewritten
            run = [acc] if acc is not None else []

    groups: Dict[tuple, List[_BlockAccess]] = {}
    for acc in accesses:
        if acc.elems % VLEN:
            continue  # rows must stay register-aligned in the packed layout
        key = (acc.store, acc.surface, acc.x_value, acc.y_value[0],
               acc.w, acc.dtype)
        groups.setdefault(key, []).append(acc)
    for key, members in groups.items():
        store = key[0]
        members.sort(key=lambda m: m.y_value[1])
        run: List[_BlockAccess] = []
        run_end = 0.0
        for acc in members + [None]:
            if acc is not None and run:
                start = acc.y_value[1]
                # stores must tile exactly (an overlapping merge would
                # drop a write); loads are idempotent, so any row range
                # touching the covered span may fold into a taller block
                # — provided rows are register-aligned, so each member
                # can copy out at a whole-register row offset
                if start == run_end or (not store and start <= run_end
                                        and acc.w % VLEN == 0):
                    run.append(acc)
                    run_end = max(run_end, start + acc.h)
                    continue
            if len(run) >= 2:
                rewritten = _try_block_merge(program, run, axis="y")
                if rewritten is not None:
                    return rewritten
            run = [acc] if acc is not None else []
            run_end = acc.y_value[1] + acc.h if acc is not None else 0.0
    return None


def _try_block_merge(program: Program, run: List[_BlockAccess],
                     axis: str) -> Optional[Program]:
    """One merge attempt; register pressure skips the run, not the pass."""
    try:
        return _apply_block_merge(program, run, axis)
    except ScheduleError:
        return None


def _apply_block_merge(program: Program, run: List[_BlockAccess],
                       axis: str) -> Optional[Program]:
    store = run[0].store
    surface = run[0].surface
    ips = {m.ip for m in run}
    lo, hi = min(m.ip for m in run), max(m.ip for m in run)
    if _span_blockers(program, lo, hi, ips, surface, stores_matter=store):
        return None
    if run[0].ip != lo:
        # the merged access anchors on the lowest-coordinate member's
        # operands, which are only known live from that member's position
        return None
    first = run[0]
    overlap = False
    if axis == "x":
        shape = (sum(m.w for m in run), 1)
    else:
        base_y = run[0].y_value[1]
        end_y = max(m.y_value[1] + m.h for m in run)
        shape = (run[0].w, int(round(end_y - base_y)))
        overlap = shape[1] != sum(m.h for m in run)
        if overlap and (store or shape[0] % VLEN):
            # overlapping stores would coalesce two writes; overlapping
            # loads need whole-register rows to copy out at an offset
            return None
    width, total_h = shape
    total = width * total_h
    anchor = first.instr.srcs[0]  # BlockOperand carrying x and the base y

    # the merged access reads its x/y at the anchor position; the anchor's
    # own coordinate registers must not be redefined across the span when
    # the merged op does not sit at the anchor (stores execute at `hi`)
    coord_regs = (_operand_reg_set(anchor.x) | _operand_reg_set(anchor.y))

    member_regs = []
    for m in run:
        reg_op = m.instr.srcs[1] if store else m.instr.dsts[0]
        regs = _packed_regs(reg_op)
        if regs is None or len(regs) != m.elems // VLEN:
            return None
        member_regs.append((m, reg_op, regs))

    items = _to_items(program)
    index = _instr_item_index(items)
    patches: Dict[int, List[object]] = {}

    flat = [r for _, _, regs in member_regs for r in regs]
    contiguous = all(flat[i + 1] == flat[i] + 1 for i in range(len(flat) - 1))

    if not store:
        direct = (contiguous and not overlap
                  and [m.ip for m in run] == sorted(ips))
        if direct:
            # later members' destinations now fill at the first position:
            # nothing between may read or write them
            later = set(flat[len(member_regs[0][2]):])
            if _regs_touched_in(program, lo, hi, ips) & later:
                direct = False
        if direct:
            merged = Instruction(
                Opcode.LDBLK, width=total, dtype=run[0].dtype,
                dsts=(RangeOperand(flat[0], flat[-1]),),
                srcs=(anchor,), block=(width, total_h))
            patches[index[first.ip]] = [merged]
            for m, _, _ in member_regs:
                if m.ip != first.ip:
                    patches[index[m.ip]] = []
        else:
            stage = _free_vreg_block(program, total // VLEN)
            merged = Instruction(
                Opcode.LDBLK, width=total, dtype=run[0].dtype,
                dsts=(RangeOperand(stage, stage + total // VLEN - 1),),
                srcs=(anchor,), block=(width, total_h))
            cursor = stage
            for m, reg_op, regs in member_regs:
                if axis == "y" and width % VLEN == 0:
                    # rows pack row-major: a member covering rows
                    # [m.y, m.y + m.h) starts at its row offset, which
                    # also lands overlapped members on the shared rows
                    src = stage + int(round(m.y_value[1] - base_y)) \
                        * (width // VLEN)
                else:
                    # rows narrower than a register can't be addressed
                    # at a register-offset; these runs tile exactly (no
                    # overlap), so sequential packing is the layout
                    src = cursor
                    cursor += len(regs)
                copy = Instruction(
                    Opcode.MOV, width=m.elems, dtype=DataType.DF,
                    dsts=(reg_op,),
                    srcs=(RangeOperand(src, src + len(regs) - 1),))
                if m.ip == first.ip:
                    patches[index[m.ip]] = [merged, copy]
                else:
                    patches[index[m.ip]] = [copy]
    else:
        # the merged store retires at the last member's position; capture
        # each member's value (and the anchor coordinates, if clobbered)
        # where they were originally read
        redefined = _regs_defined_in(program, lo, hi, ips)
        stage_coords = [op for op in (anchor.x, anchor.y)
                        if _operand_reg_set(op) & redefined]
        stage = _free_vreg_block(program, total // VLEN + len(stage_coords))
        x_op, y_op = anchor.x, anchor.y
        coord_movs: List[Instruction] = []
        cursor_c = stage + total // VLEN
        for op in stage_coords:
            coord_movs.append(
                Instruction(Opcode.MOV, width=1, dtype=DataType.DF,
                            dsts=(RegOperand(cursor_c),), srcs=(op,)))
            if op is anchor.x:
                x_op = RegOperand(cursor_c)
            else:
                y_op = RegOperand(cursor_c)
            cursor_c += 1
        merged = Instruction(
            Opcode.STBLK, width=total, dtype=run[0].dtype,
            srcs=(BlockOperand(surface, x_op, y_op),
                  RangeOperand(stage, stage + total // VLEN - 1)),
            block=(width, total_h))
        cursor = stage
        for m, reg_op, regs in member_regs:
            copy = Instruction(
                Opcode.MOV, width=m.elems, dtype=DataType.DF,
                dsts=(RangeOperand(cursor, cursor + len(regs) - 1),),
                srcs=(reg_op,))
            cursor += len(regs)
            seq: List[object] = [copy]
            if m.ip == first.ip:
                seq = coord_movs + seq
            if m.ip == hi:
                seq = seq + [merged]
            patches[index[m.ip]] = seq

    new_items: List[object] = []
    for pos, item in enumerate(items):
        if pos in patches:
            new_items.extend(patches[pos])
        else:
            new_items.append(item)
    return _emit(new_items, program.name)


def _merge_scalar_run(program: Program,
                      accesses: List[_ScalarAccess]) -> Optional[Program]:
    groups: Dict[tuple, List[_ScalarAccess]] = {}
    for acc in accesses:
        key = (acc.store, acc.surface, acc.index_value[0], acc.dtype)
        groups.setdefault(key, []).append(acc)
    for key, members in groups.items():
        members.sort(key=lambda m: m.index_value[1])
        run: List[_ScalarAccess] = []
        for acc in members + [None]:
            if (acc is not None and run
                    and acc.index_value[1] == run[-1].index_value[1] + 1
                    and acc.reg == run[-1].reg + 1):
                run.append(acc)
                continue
            if len(run) >= 2:
                rewritten = _apply_scalar_merge(program, run)
                if rewritten is not None:
                    return rewritten
            run = [acc] if acc is not None else []
    return None


def _apply_scalar_merge(program: Program,
                        run: List[_ScalarAccess]) -> Optional[Program]:
    store = run[0].store
    surface = run[0].surface
    ips = {m.ip for m in run}
    lo, hi = min(ips), max(ips)
    if _span_blockers(program, lo, hi, ips, surface, stores_matter=store):
        return None
    if [m.ip for m in run] != sorted(ips):
        return None
    first, last = run[0], run[-1]
    regs = [m.reg for m in run]
    touched = _regs_touched_in(program, lo, hi, ips)
    redefined = _regs_defined_in(program, lo, hi, ips)
    mem = first.instr.srcs[0]
    index_regs = _operand_reg_set(mem.index)
    if store:
        # values and the index must survive until the merged store at `hi`
        if (set(regs) & redefined) or (index_regs & redefined):
            return None
    else:
        # destinations fill early at `lo`: nothing between may touch them
        # (the index is read at `lo` too, before any redefinition, so
        # index redefs below are harmless)
        if set(regs[1:]) & touched:
            return None
    count = len(run)
    mem_op = MemOperand(surface, mem.index, mem.offset)
    if store:
        merged = Instruction(Opcode.ST, width=count, dtype=first.dtype,
                             srcs=(mem_op, RangeOperand(regs[0], regs[-1])))
    else:
        merged = Instruction(Opcode.LD, width=count, dtype=first.dtype,
                             dsts=(RangeOperand(regs[0], regs[-1]),),
                             srcs=(mem_op,))
    items = _to_items(program)
    index = _instr_item_index(items)
    new_items: List[object] = []
    target_pos = index[hi] if store else index[lo]
    for pos, item in enumerate(items):
        if pos == target_pos:
            new_items.append(merged)
        elif pos in {index[ip] for ip in ips}:
            continue
        else:
            new_items.append(item)
    return _emit(new_items, program.name)


# ---------------------------------------------------------------------------
# copy forwarding: clean up the staging round-trips block merging leaves
# ---------------------------------------------------------------------------


def _register_liveness(program: Program) -> List[Set[int]]:
    """Live-out register set at every instruction.

    Backward dataflow over the block graph.  A predicated definition may
    not happen, so it does not kill: the register stays live above it.
    """
    ranges, _, succs = _block_graph(program)
    effects = [instruction_effects(i) for i in program.instructions]

    def kill_set(ip: int) -> Set[int]:
        if program.instructions[ip].pred is not None:
            return set()
        return effects[ip].reg_defs

    gen: List[Set[int]] = []
    kill: List[Set[int]] = []
    for a, b in ranges:
        g: Set[int] = set()
        k: Set[int] = set()
        for ip in range(b - 1, a - 1, -1):
            defs = kill_set(ip)
            g = effects[ip].reg_uses | (g - defs)
            k = k | defs
        gen.append(g)
        kill.append(k)
    live_in: List[Set[int]] = [set() for _ in ranges]
    live_out_blk: List[Set[int]] = [set() for _ in ranges]
    changed = True
    while changed:
        changed = False
        for bi in range(len(ranges) - 1, -1, -1):
            out: Set[int] = set()
            for s in succs[bi]:
                out |= live_in[s]
            inn = gen[bi] | (out - kill[bi])
            if out != live_out_blk[bi] or inn != live_in[bi]:
                live_out_blk[bi], live_in[bi] = out, inn
                changed = True
    live_out: List[Set[int]] = [set() for _ in program.instructions]
    for bi, (a, b) in enumerate(ranges):
        live = set(live_out_blk[bi])
        for ip in range(b - 1, a - 1, -1):
            live_out[ip] = set(live)
            live = effects[ip].reg_uses | (live - kill_set(ip))
    return live_out


# side-effect-free when well-formed: no memory traffic, no predicate
# definitions, no CEH path (faults in semantics are structural, raised
# regardless of the value flowing through) — so one whose destinations
# are dead below it can be deleted without changing any observable
_PURE_ALU = (Opcode.MOV, Opcode.ADD, Opcode.SUB, Opcode.SHL, Opcode.SHR,
             Opcode.AND, Opcode.OR, Opcode.XOR)


def _dead_dsts(instr: Instruction, live: Set[int]) -> bool:
    """A pure ALU op whose every destination register is dead."""
    if instr.opcode not in _PURE_ALU or instr.pred is not None:
        return False
    regs: Set[int] = set()
    for op in instr.dsts:
        packed = _packed_regs(op)
        if packed is None:
            return False
        regs |= set(packed)
    return bool(regs) and not regs & live


def _staging_copy(instr: Instruction):
    """(dst regs, src regs) of a ``mov.N.df`` register-to-register copy
    in packing order, else None.  ``mov.df`` moves raw lanes, so the
    source registers hold bit-identical values to the destinations."""
    if (instr.opcode is not Opcode.MOV or instr.pred is not None
            or instr.dtype is not DataType.DF
            or len(instr.dsts) != 1 or len(instr.srcs) != 1):
        return None
    dst = _packed_regs(instr.dsts[0])
    src = _packed_regs(instr.srcs[0])
    if not dst or not src or len(dst) != len(src) or set(dst) & set(src):
        return None
    return dst, src


def _forward_copies(program: Program) -> Optional[Program]:
    """Forward ``mov.N.df`` staging copies into their readers, then drop
    the copies nobody reads any more.

    Block merging funnels every member access through its original
    registers: the merged load lands in staging registers and a copy
    re-materialises each member's lanes where its consumers expect them.
    Most of those round-trips are pure renames.  Within one linear span
    a copy ``mov [d..] = [s..]`` makes ``d`` an alias of ``s`` until
    either side is redefined; a source operand lying wholly inside live
    aliases is rewritten to read the aliased registers directly (staging
    blocks are contiguous, so any aliased subrange stays contiguous).
    Any pure ALU op whose destinations are dead below it — by liveness
    over the block graph — is then deleted outright: forwarding kills
    the copies themselves, and block merging orphans address arithmetic
    whose consumer it absorbed.  Returns None at fixpoint.
    """
    items = _to_items(program)
    index = _instr_item_index(items)
    forwarded = False
    for a, b in _block_ranges(program):
        alias: Dict[int, int] = {}
        for ip in range(a, b):
            instr = program.instructions[ip]
            if alias and instr.srcs:
                srcs = list(instr.srcs)
                hit = False
                for pos, op in enumerate(srcs):
                    regs = _packed_regs(op)
                    if not regs or not all(r in alias for r in regs):
                        continue
                    mapped = [alias[r] for r in regs]
                    if any(mapped[i] + 1 != mapped[i + 1]
                           for i in range(len(mapped) - 1)):
                        continue
                    srcs[pos] = (RegOperand(mapped[0])
                                 if isinstance(op, RegOperand)
                                 else RangeOperand(mapped[0], mapped[-1]))
                    hit = True
                if hit:
                    instr = _dc_replace(instr, srcs=tuple(srcs))
                    items[index[ip]] = instr
                    forwarded = True
            defs = instruction_effects(instr).reg_defs
            if defs:
                alias = {d: s for d, s in alias.items()
                         if d not in defs and s not in defs}
            copy = _staging_copy(instr)
            if copy is not None:
                for d, s in zip(*copy):
                    # chase chains so a copy of a copy aliases the root
                    alias[d] = alias.get(s, s)
    if forwarded:
        return _emit(items, program.name)
    live_out = _register_liveness(program)
    dead = [ip for ip, instr in enumerate(program.instructions)
            if _dead_dsts(instr, live_out[ip])]
    if not dead:
        return None
    for ip in dead:
        items[index[ip]] = None
    return _emit([item for item in items if item is not None], program.name)


# ---------------------------------------------------------------------------
# replace: idiom fragments onto dedicated ISA ops
# ---------------------------------------------------------------------------

REPLACE_IDIOMS = ("avg", "mad")


def replace(program: Program, idiom: str) -> Program:
    """Rewrite recognizable fragments onto a dedicated ISA op.

    * ``"avg"``: ``add t = a, b; add t = t, 1; shr d = t, 1`` →
      ``avg d = a, b`` (integer dtypes; exact while ``a + b + 1`` stays in
      range, which the fragment differential samples and the end-to-end
      harness enforces);
    * ``"mad"``: ``mul t = a, b; add d = t, c`` → ``mad d = a, b, c``
      (integer dtypes only — float ``mad`` rounds once where ``mul+add``
      rounds twice, so the float form is *not* bit-identical and is
      deliberately not matched).

    The temporary ``t`` must never be read outside the fragment.  Every
    rewrite is verified by executing both fragments on random register
    states and requiring exact equality on all surviving registers.
    """
    if idiom not in REPLACE_IDIOMS:
        raise ScheduleError(
            f"unknown replace idiom {idiom!r}; have {REPLACE_IDIOMS}")
    matcher = _match_avg if idiom == "avg" else _match_mad
    out = program
    for _ in range(64):
        found = matcher(out)
        if found is None:
            return out
        start, length, replacement, temp_regs = found
        _verify_fragment(out.instructions[start:start + length],
                         [replacement], temp_regs)
        items = _to_items(out)
        index = _instr_item_index(items)
        positions = {index[start + k] for k in range(length)}
        new_items: List[object] = []
        for pos, item in enumerate(items):
            if pos == index[start]:
                new_items.append(replacement)
            elif pos in positions:
                continue
            else:
                new_items.append(item)
        out = _emit(new_items, out.name)
    return out


def _reads_of_reg(program: Program, reg: int) -> List[int]:
    return [ip for ip, instr in enumerate(program.instructions)
            if reg in instruction_effects(instr).reg_uses]


def _plain_int_alu(instr: Instruction, opcode: Opcode) -> bool:
    return (instr.opcode is opcode and instr.pred is None
            and instr.dtype not in (DataType.F, DataType.DF)
            and len(instr.dsts) == 1
            and isinstance(instr.dsts[0], (RegOperand, RangeOperand)))


def _match_avg(program: Program):
    instrs = program.instructions
    for ip in range(len(instrs) - 2):
        a1, a2, sh = instrs[ip], instrs[ip + 1], instrs[ip + 2]
        if not (_plain_int_alu(a1, Opcode.ADD) and _plain_int_alu(a2, Opcode.ADD)
                and _plain_int_alu(sh, Opcode.SHR)):
            continue
        if not (a1.width == a2.width == sh.width
                and a1.dtype == a2.dtype == sh.dtype):
            continue
        t = a1.dsts[0]
        if (a2.dsts[0] != t or a2.srcs[0] != t
                or not isinstance(a2.srcs[1], ImmOperand)
                or a2.srcs[1].value != 1):
            continue
        if (sh.srcs[0] != t or not isinstance(sh.srcs[1], ImmOperand)
                or sh.srcs[1].value != 1):
            continue
        temp_regs = _operand_reg_set(t) if not isinstance(t, RangeOperand) \
            else set(range(t.start, t.stop + 1))
        dst_regs = _operand_reg_set(sh.dsts[0]) if not isinstance(sh.dsts[0], RangeOperand) \
            else set(range(sh.dsts[0].start, sh.dsts[0].stop + 1))
        if temp_regs & dst_regs:
            continue  # temp must actually die
        reads = set()
        for r in temp_regs:
            reads |= {i for i in _reads_of_reg(program, r)
                      if i not in (ip + 1, ip + 2)}
        if reads:
            continue
        replacement = Instruction(Opcode.AVG, width=sh.width, dtype=sh.dtype,
                                  dsts=(sh.dsts[0],),
                                  srcs=(a1.srcs[0], a1.srcs[1]))
        return (ip, 3, replacement, temp_regs)
    return None


def _match_mad(program: Program):
    instrs = program.instructions
    for ip in range(len(instrs) - 1):
        mul, add = instrs[ip], instrs[ip + 1]
        if not (_plain_int_alu(mul, Opcode.MUL) and _plain_int_alu(add, Opcode.ADD)):
            continue
        if mul.width != add.width or mul.dtype != add.dtype:
            continue
        t = mul.dsts[0]
        if add.srcs[0] == t:
            other = add.srcs[1]
        elif add.srcs[1] == t:
            other = add.srcs[0]
        else:
            continue
        temp_regs = _operand_reg_set(t) if not isinstance(t, RangeOperand) \
            else set(range(t.start, t.stop + 1))
        dst_regs = _operand_reg_set(add.dsts[0]) if not isinstance(add.dsts[0], RangeOperand) \
            else set(range(add.dsts[0].start, add.dsts[0].stop + 1))
        if temp_regs & dst_regs:
            continue
        reads = set()
        for r in temp_regs:
            reads |= {i for i in _reads_of_reg(program, r) if i != ip + 1}
        if reads:
            continue
        replacement = Instruction(Opcode.MAD, width=add.width, dtype=add.dtype,
                                  dsts=(add.dsts[0],),
                                  srcs=(mul.srcs[0], mul.srcs[1], other))
        return (ip, 2, replacement, temp_regs)
    return None


class _FragmentContext:
    """Bare register-only execution context for idiom differentials."""

    def __init__(self):
        self.regs = RegisterFile()
        self.symbols: Dict[str, float] = {}

    def resolve_symbol(self, name: str) -> float:
        return self.symbols.setdefault(name, 7.0)


def _verify_fragment(original: Sequence[Instruction],
                     replacement: Sequence[Instruction],
                     temp_regs: Set[int], trials: int = 32) -> None:
    """Run both fragments on random states; require exact equality."""
    from . import semantics

    def run(instrs, ctx):
        prog = _emit(list(instrs) + [Instruction(Opcode.END)], "<frag>")
        ip = 0
        while ip < len(prog.instructions):
            eff = semantics.execute(prog, ip, ctx)
            if eff.ended:
                break
            ip = eff.next_ip if eff.next_ip is not None else ip + 1

    rng = np.random.default_rng(0x5EED)
    for _ in range(trials):
        lanes = rng.integers(0, 1 << 10, size=(NUM_VREGS, VLEN)).astype(float)
        a, b = _FragmentContext(), _FragmentContext()
        for ctx in (a, b):
            for reg in range(NUM_VREGS):
                ctx.regs.write_lanes(reg, lanes[reg])
        run(original, a)
        run(replacement, b)
        for reg in range(NUM_VREGS):
            if reg in temp_regs:
                continue
            got = b.regs.read_lanes(reg, VLEN)
            want = a.regs.read_lanes(reg, VLEN)
            if not np.array_equal(got, want):
                raise ScheduleError(
                    f"replace differential mismatch on vr{reg}: "
                    f"{want} != {got}")


# ---------------------------------------------------------------------------
# the Schedule API
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Schedule:
    """An ordered recipe of transform applications.

    Built fluently (``Schedule().stage_mem().unroll("loop", 4)``) or
    parsed from a spec string (:func:`parse_schedule`); applied with
    :func:`apply_schedule`.  An empty schedule is the baseline and
    applies as the identity (same ``Program`` object, so the predecode
    cache entry is shared).
    """

    steps: Tuple[Tuple[str, tuple], ...] = ()

    def unroll(self, label: Optional[str] = None, factor: int = 4) -> "Schedule":
        return Schedule(self.steps + (("unroll", (label, factor)),))

    def split(self, label: Optional[str] = None, factor: int = 4) -> "Schedule":
        return Schedule(self.steps + (("split", (label, factor)),))

    def reorder(self) -> "Schedule":
        return Schedule(self.steps + (("reorder", ()),))

    def stage_mem(self) -> "Schedule":
        return Schedule(self.steps + (("stage_mem", ()),))

    def replace(self, idiom: str) -> "Schedule":
        return Schedule(self.steps + (("replace", (idiom,)),))

    def describe(self) -> str:
        if not self.steps:
            return "baseline"
        parts = []
        for kind, args in self.steps:
            if kind in ("unroll", "split"):
                label, factor = args
                at = f"@{label}" if label else ""
                parts.append(f"{kind}{factor}{at}")
            elif kind == "replace":
                parts.append(f"replace_{args[0]}")
            else:
                parts.append(kind)
        return "+".join(parts)


BASELINE = Schedule()


def _auto_unroll_targets(program: Program, factor: int,
                         bindings: Optional[Dict[str, float]]
                         ) -> List[Tuple[str, int]]:
    """Innermost loops with a legal (divisor-adjusted) unroll factor."""
    targets: List[Tuple[str, int]] = []
    for lp in find_counted_loops(program, bindings):
        if not lp.innermost or lp.trip is None:
            continue
        use = 0
        for f in range(min(factor, lp.trip), 1, -1):
            if lp.trip % f == 0:
                use = f
                break
        if use >= 2:
            targets.append((lp.label, use))
    return targets


def apply_schedule(program: Program, schedule: Schedule,
                   bindings: Optional[Dict[str, float]] = None) -> Program:
    """Apply every step of ``schedule``; returns a fresh Program.

    Steps with an explicit loop label raise :class:`ScheduleError` when
    illegal; label-less ``unroll``/``split`` steps auto-target every
    innermost counted loop and silently skip loops they cannot handle
    (adjusting the factor down to the largest divisor of the trip
    count).  An empty schedule returns the input program unchanged.
    """
    out = program
    for kind, args in schedule.steps:
        if kind in ("unroll", "split"):
            label, factor = args
            fn = unroll if kind == "unroll" else split
            if label is not None:
                out = fn(out, label, factor, bindings)
            else:
                for lb, use in _auto_unroll_targets(out, factor, bindings):
                    try:
                        out = fn(out, lb, use, bindings)
                    except ScheduleError:
                        continue
        elif kind == "reorder":
            out = reorder(out)
        elif kind == "stage_mem":
            out = stage_mem(out)
        elif kind == "replace":
            out = replace(out, args[0])
        else:  # pragma: no cover - Schedule builders gate the step names
            raise ScheduleError(f"unknown schedule step {kind!r}")
    if out is not program:
        out.name = f"{program.name}~{schedule.describe()}"
    return out


_STEP_RE = re.compile(r"^(unroll|split)(\d+)?(?:@([A-Za-z_]\w*))?$")


def parse_schedule(spec: str) -> Schedule:
    """Parse a ``chirun --schedule`` spec string into a Schedule.

    Grammar: steps joined by ``+``; each step one of ``unroll[N][@label]``,
    ``split[N][@label]``, ``stage_mem``, ``reorder``, ``replace_avg``,
    ``replace_mad``.  ``baseline``/``none`` name the empty schedule.
    """
    spec = (spec or "").strip()
    if spec in ("", "baseline", "none"):
        return BASELINE
    sched = BASELINE
    for token in spec.split("+"):
        token = token.strip()
        if token == "stage_mem":
            sched = sched.stage_mem()
        elif token == "reorder":
            sched = sched.reorder()
        elif token.startswith("replace_"):
            idiom = token[len("replace_"):]
            if idiom not in REPLACE_IDIOMS:
                raise ScheduleError(f"unknown replace idiom {idiom!r}")
            sched = sched.replace(idiom)
        else:
            m = _STEP_RE.match(token)
            if not m:
                raise ScheduleError(
                    f"unknown schedule step {token!r} (grammar: "
                    f"unroll[N][@label], split[N][@label], stage_mem, "
                    f"reorder, replace_avg, replace_mad)")
            kind, factor, label = m.group(1), m.group(2), m.group(3)
            factor = int(factor) if factor else 4
            if kind == "unroll":
                sched = sched.unroll(label, factor)
            else:
                sched = sched.split(label, factor)
    return sched
