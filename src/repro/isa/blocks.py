"""Basic-block discovery over a predecoded program.

The gang engine's fused executor (:mod:`repro.gma.fusion`) amortizes its
per-instruction Python dispatch over whole straight-line regions.  This
module finds those regions once per program: a *basic block* is a maximal
run of instructions the gang can retire back-to-back without consulting
the per-instruction loop — batched ALU ops plus the no-datapath controls
(``nop``/``fence``) — optionally ending with one *terminator*
(``jmp``/``br``/``end``) whose outcome decides the successor.

Leaders (block entry points) sit at:

* instruction 0 (the common entry),
* every label (any label is a potential branch target or shred entry),
* every well-formed branch's target *and* its fall-through,
* the fall-through of every non-fusable boundary instruction (memory
  ops, per-shred steps, peels): the per-instruction loop resumes there
  after handling the boundary, and fusion must be able to pick the trace
  back up.

A block never spans a leader — a backward branch into the middle of a
straight-line run splits it — so entering a block at its ``start`` is the
only way in, which is what lets the fused executor charge a whole block's
accounting in one shot.  Blocks that would be empty (a boundary
instruction is the entry itself) are not recorded; the per-instruction
loop owns those ips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .opcodes import Opcode
from .predecode import (
    BATCH_ALU,
    BATCH_CONTROL,
    BATCH_PEEL,
    PredecodedInstr,
    PredecodedProgram,
)

#: Control ops with no datapath effect: fusable into a block body.
_BODY_CONTROL = (Opcode.NOP, Opcode.FENCE)
#: Control ops that end a block and pick its successor.
_TERMINATORS = (Opcode.JMP, Opcode.BR, Opcode.END)


def fusable_body(pre: PredecodedInstr) -> bool:
    """Can this instruction sit inside a fused block body?"""
    if pre.batch_class == BATCH_ALU:
        return True
    return (pre.batch_class == BATCH_CONTROL
            and pre.opcode in _BODY_CONTROL)


def is_terminator(pre: PredecodedInstr) -> bool:
    """Does this instruction end a block with a control decision?

    Only *well-formed* branches qualify (``BATCH_CONTROL``): a malformed
    branch predecodes as ``BATCH_PEEL`` and stays a boundary so the
    per-instruction loop peels it exactly as before.
    """
    return (pre.batch_class == BATCH_CONTROL
            and pre.opcode in _TERMINATORS)


@dataclass(frozen=True)
class BasicBlock:
    """One maximal fusable region ``[start, end)``.

    ``body_len`` counts the fusable body instructions; ``term`` is the
    ip of the terminating ``jmp``/``br``/``end`` when the block ends
    with one (``end`` then equals ``term + 1``), else None when the
    block stops at a boundary or at another block's leader (``end`` is
    then the resume ip for the per-instruction loop or the fall-through
    successor's leader).
    """

    start: int
    end: int
    body_len: int
    term: Optional[int] = None

    @property
    def ninstr(self) -> int:
        """Instructions retired when the whole block executes."""
        return self.body_len + (1 if self.term is not None else 0)


def discover_blocks(pre_prog: PredecodedProgram,
                    labels: Dict[str, int]) -> Dict[int, BasicBlock]:
    """All non-empty basic blocks, keyed by leader ip."""
    instrs = pre_prog.instrs
    count = len(instrs)
    leaders = {0}
    for label_ip in labels.values():
        leaders.add(label_ip)
    for ip, pre in enumerate(instrs):
        if is_terminator(pre):
            if pre.target is not None:
                leaders.add(pre.target)
            leaders.add(ip + 1)
        elif not fusable_body(pre):
            # boundary (memory / per-shred / peel): the per-instruction
            # loop resumes at the fall-through
            leaders.add(ip + 1)

    blocks: Dict[int, BasicBlock] = {}
    for start in sorted(leader for leader in leaders
                        if 0 <= leader < count):
        ip = start
        body_len = 0
        term = None
        while ip < count:
            pre = instrs[ip]
            if is_terminator(pre):
                term = ip
                ip += 1
                break
            if not fusable_body(pre):
                break
            ip += 1
            body_len += 1
            if ip in leaders:
                break
        if body_len or term is not None:
            blocks[start] = BasicBlock(start=start, end=ip,
                                       body_len=body_len, term=term)
    return blocks


# -- reconvergence discovery -------------------------------------------------
#
# A divergent branch splits the gang; its arms rejoin at the branch's
# *immediate post-dominator*: the nearest ip every path from the branch
# must pass through before the shred can retire.  (This subsumes
# loop-header join points: for a loop-exit branch the ipdom is the loop's
# fall-through, so the continuing arm simply laps the loop until it exits
# there.)  The gang engine uses the ipdom as the re-admission point for
# suspended sub-gangs, so the computation must be *sound*, never
# optimistic: a branch whose region it cannot prove pure just keeps the
# deferred-peel behaviour.


def _divergable(pre: PredecodedInstr) -> bool:
    """Can this instruction send different lanes down different edges?"""
    return (pre.batch_class == BATCH_CONTROL
            and pre.opcode in (Opcode.JMP, Opcode.BR)
            and pre.instr.pred is not None
            and pre.target is not None)


def instruction_successors(
        pre_prog: PredecodedProgram) -> List[Tuple[int, ...]]:
    """CFG successor ips per instruction (empty tuple = program exit).

    Conservative on purpose: a malformed branch (``BATCH_PEEL``) has an
    unknowable destination, so it gets no successors — paths through it
    reach the virtual exit directly and never establish reconvergence.
    Running off the end of the program also exits (the interpreters
    finish such shreds normally).
    """
    count = len(pre_prog.instrs)
    succs: List[Tuple[int, ...]] = []
    for ip, pre in enumerate(pre_prog.instrs):
        if pre.opcode is Opcode.END:
            succs.append(())
        elif pre.batch_class == BATCH_CONTROL \
                and pre.opcode in (Opcode.JMP, Opcode.BR):
            if pre.instr.pred is None:
                succs.append((pre.target,))
            else:
                succs.append((pre.target, ip + 1))
        elif pre.batch_class == BATCH_PEEL \
                and pre.opcode in (Opcode.JMP, Opcode.BR):
            succs.append(())  # malformed: destination unknowable
        else:
            succs.append((ip + 1,) if ip + 1 < count else ())
    return succs


def post_dominators(succs: List[Tuple[int, ...]]) -> List[int]:
    """Post-dominator sets as int bitsets (bit ``i`` = ip ``i``).

    Iterative dataflow over the reverse CFG against a virtual exit node:
    ``pdom(n) = {n} | intersection(pdom(s) for s in succs(n))``, with
    exit-reaching nodes seeded from the empty set.  Nodes that cannot
    reach the exit (infinite loops) converge to "everything", which is
    harmless: the ipdom extraction below demands a witness chain, so no
    bogus reconvergence point is ever produced from them alone.
    """
    count = len(succs)
    full = (1 << count) - 1
    pdom = [full] * count
    changed = True
    while changed:
        changed = False
        for ip in range(count - 1, -1, -1):
            targets = succs[ip]
            if targets:
                new = full
                for t in targets:
                    new &= pdom[t]
            else:
                new = 0
            new |= 1 << ip
            if new != pdom[ip]:
                pdom[ip] = new
                changed = True
    return pdom


def _ipdom(branch: int, pdom: List[int]) -> Optional[int]:
    """The immediate post-dominator of ``branch``, or None.

    The strict post-dominators of a node form a chain; the immediate one
    ``r`` is the unique member with ``pdom(branch) == pdom(r) | {branch}``.
    Demanding that witness equation filters out the saturated "cannot
    reach exit" fixpoint values.
    """
    strict = pdom[branch] & ~(1 << branch)
    want = pdom[branch]
    r = strict
    while r:
        low = r & -r
        ip = low.bit_length() - 1
        if (pdom[ip] | (1 << branch)) == want:
            return ip
        r &= r - 1
    return None


def _region_pure(branch: int, reconv: int, succs: List[Tuple[int, ...]],
                 instrs: Tuple[PredecodedInstr, ...]) -> bool:
    """Is the divergent region between ``branch`` and ``reconv`` free of
    ordered side effects?

    The region is every ip reachable from the branch's arms without
    passing through ``reconv``.  A ``BATCH_PEEL`` instruction in it
    (spawn / sendreg / flush / malformed branch) emits globally-ordered
    side effects, so a suspended sub-gang running the region could not
    preserve scalar queue order — such branches keep the deferred peel.
    ``END`` and faultable instructions are fine: a lane that retires or
    peels mid-region simply never reports to the join.
    """
    seen = set()
    stack = [s for s in succs[branch] if s != reconv]
    while stack:
        ip = stack.pop()
        if ip in seen:
            continue
        seen.add(ip)
        if instrs[ip].batch_class == BATCH_PEEL:
            return False
        stack.extend(s for s in succs[ip] if s != reconv and s not in seen)
    return True


def annotate_reconvergence(pre_prog: PredecodedProgram) -> None:
    """Attach ``reconv`` / ``repackable`` to every divergable branch.

    Called once per program from :func:`~.predecode.predecode_program`
    (gangable programs only — the scalar engine never reads these).
    """
    if not any(_divergable(pre) for pre in pre_prog.instrs):
        return
    succs = instruction_successors(pre_prog)
    pdom = post_dominators(succs)
    for ip, pre in enumerate(pre_prog.instrs):
        if not _divergable(pre):
            continue
        reconv = _ipdom(ip, pdom)
        pre.reconv = reconv
        pre.repackable = (reconv is not None
                          and _region_pure(ip, reconv, succs,
                                           pre_prog.instrs))
