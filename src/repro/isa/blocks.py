"""Basic-block discovery over a predecoded program.

The gang engine's fused executor (:mod:`repro.gma.fusion`) amortizes its
per-instruction Python dispatch over whole straight-line regions.  This
module finds those regions once per program: a *basic block* is a maximal
run of instructions the gang can retire back-to-back without consulting
the per-instruction loop — batched ALU ops plus the no-datapath controls
(``nop``/``fence``) — optionally ending with one *terminator*
(``jmp``/``br``/``end``) whose outcome decides the successor.

Leaders (block entry points) sit at:

* instruction 0 (the common entry),
* every label (any label is a potential branch target or shred entry),
* every well-formed branch's target *and* its fall-through,
* the fall-through of every non-fusable boundary instruction (memory
  ops, per-shred steps, peels): the per-instruction loop resumes there
  after handling the boundary, and fusion must be able to pick the trace
  back up.

A block never spans a leader — a backward branch into the middle of a
straight-line run splits it — so entering a block at its ``start`` is the
only way in, which is what lets the fused executor charge a whole block's
accounting in one shot.  Blocks that would be empty (a boundary
instruction is the entry itself) are not recorded; the per-instruction
loop owns those ips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .opcodes import Opcode
from .predecode import (
    BATCH_ALU,
    BATCH_CONTROL,
    PredecodedInstr,
    PredecodedProgram,
)

#: Control ops with no datapath effect: fusable into a block body.
_BODY_CONTROL = (Opcode.NOP, Opcode.FENCE)
#: Control ops that end a block and pick its successor.
_TERMINATORS = (Opcode.JMP, Opcode.BR, Opcode.END)


def fusable_body(pre: PredecodedInstr) -> bool:
    """Can this instruction sit inside a fused block body?"""
    if pre.batch_class == BATCH_ALU:
        return True
    return (pre.batch_class == BATCH_CONTROL
            and pre.opcode in _BODY_CONTROL)


def is_terminator(pre: PredecodedInstr) -> bool:
    """Does this instruction end a block with a control decision?

    Only *well-formed* branches qualify (``BATCH_CONTROL``): a malformed
    branch predecodes as ``BATCH_PEEL`` and stays a boundary so the
    per-instruction loop peels it exactly as before.
    """
    return (pre.batch_class == BATCH_CONTROL
            and pre.opcode in _TERMINATORS)


@dataclass(frozen=True)
class BasicBlock:
    """One maximal fusable region ``[start, end)``.

    ``body_len`` counts the fusable body instructions; ``term`` is the
    ip of the terminating ``jmp``/``br``/``end`` when the block ends
    with one (``end`` then equals ``term + 1``), else None when the
    block stops at a boundary or at another block's leader (``end`` is
    then the resume ip for the per-instruction loop or the fall-through
    successor's leader).
    """

    start: int
    end: int
    body_len: int
    term: Optional[int] = None

    @property
    def ninstr(self) -> int:
        """Instructions retired when the whole block executes."""
        return self.body_len + (1 if self.term is not None else 0)


def discover_blocks(pre_prog: PredecodedProgram,
                    labels: Dict[str, int]) -> Dict[int, BasicBlock]:
    """All non-empty basic blocks, keyed by leader ip."""
    instrs = pre_prog.instrs
    count = len(instrs)
    leaders = {0}
    for label_ip in labels.values():
        leaders.add(label_ip)
    for ip, pre in enumerate(instrs):
        if is_terminator(pre):
            if pre.target is not None:
                leaders.add(pre.target)
            leaders.add(ip + 1)
        elif not fusable_body(pre):
            # boundary (memory / per-shred / peel): the per-instruction
            # loop resumes at the fall-through
            leaders.add(ip + 1)

    blocks: Dict[int, BasicBlock] = {}
    for start in sorted(leader for leader in leaders
                        if 0 <= leader < count):
        ip = start
        body_len = 0
        term = None
        while ip < count:
            pre = instrs[ip]
            if is_terminator(pre):
                term = ip
                ip += 1
                break
            if not fusable_body(pre):
                break
            ip += 1
            body_len += 1
            if ip in leaders:
                break
        if body_len or term is not None:
            blocks[start] = BasicBlock(start=start, end=ip,
                                       body_len=body_len, term=term)
    return blocks
