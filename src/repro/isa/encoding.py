"""Binary encoding and decoding of accelerator programs.

The CHI compiler embeds each ``__asm`` block into the fat binary as a
*binary* code section (paper section 4.1: "the resulting binary code is
embedded in a special code section of the executable indexed with a unique
identifier").  This module defines that section format.

Layout (all little-endian):

.. code-block:: none

    magic   "XASM"              4 bytes
    version u8                  (currently 1)
    nstr    u32                 string-table entries
    strings [u16 len + utf-8]   names of symbols, surfaces and labels
    nlabels u32
    labels  [u32 strid + u32 instruction index]
    ninstr  u32
    instr   [variable, see _encode_instruction]
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from ..errors import EncodingError
from .instructions import Instruction, Predication
from .opcodes import Condition, Opcode
from .operands import (
    BlockOperand,
    ImmOperand,
    LabelOperand,
    MemOperand,
    Operand,
    PredOperand,
    RangeOperand,
    RegOperand,
    ShredRegOperand,
    SymOperand,
)
from .program import Program
from .types import DataType

MAGIC = b"XASM"
VERSION = 1

_OPCODES = list(Opcode)
_OPCODE_INDEX = {op: i for i, op in enumerate(_OPCODES)}
_DTYPES = list(DataType)
_DTYPE_INDEX = {t: i for i, t in enumerate(_DTYPES)}
_CONDS = list(Condition)
_COND_INDEX = {c: i for i, c in enumerate(_CONDS)}

# operand tags
_TAG_REG = 0
_TAG_RANGE = 1
_TAG_IMM = 2
_TAG_SYM = 3
_TAG_PRED = 4
_TAG_LABEL = 5
_TAG_MEM = 6
_TAG_BLOCK = 7
_TAG_SHREDREG = 8

_FLAG_PRED = 1
_FLAG_PRED_NEG = 2
_FLAG_COND = 4
_FLAG_BLOCK = 8


class _StringTable:
    def __init__(self):
        self._index: Dict[str, int] = {}
        self.strings: List[str] = []

    def intern(self, s: str) -> int:
        if s not in self._index:
            self._index[s] = len(self.strings)
            self.strings.append(s)
        return self._index[s]


def encode_program(program: Program) -> bytes:
    """Serialize a program to the fat-binary code-section format."""
    table = _StringTable()
    for name in sorted(program.labels):
        table.intern(name)
    body = bytearray()
    for instr in program.instructions:
        body += _encode_instruction(instr, table)
    out = bytearray()
    out += MAGIC
    out.append(VERSION)
    out += struct.pack("<I", len(table.strings))
    for s in table.strings:
        data = s.encode("utf-8")
        out += struct.pack("<H", len(data))
        out += data
    out += struct.pack("<I", len(program.labels))
    for name, idx in sorted(program.labels.items()):
        out += struct.pack("<II", table.intern(name), idx)
    out += struct.pack("<I", len(program.instructions))
    out += body
    return bytes(out)


def decode_program(data: bytes, name: str = "<decoded>") -> Program:
    """Inverse of :func:`encode_program`."""
    if data[:4] != MAGIC:
        raise EncodingError("bad magic: not an accelerator code section")
    version = data[4]
    if version != VERSION:
        raise EncodingError(f"unsupported code section version {version}")
    offset = 5
    (nstr,) = struct.unpack_from("<I", data, offset)
    offset += 4
    strings = []
    for _ in range(nstr):
        (slen,) = struct.unpack_from("<H", data, offset)
        offset += 2
        strings.append(data[offset : offset + slen].decode("utf-8"))
        offset += slen
    (nlabels,) = struct.unpack_from("<I", data, offset)
    offset += 4
    labels = {}
    for _ in range(nlabels):
        strid, idx = struct.unpack_from("<II", data, offset)
        offset += 8
        labels[strings[strid]] = idx
    (ninstr,) = struct.unpack_from("<I", data, offset)
    offset += 4
    instructions = []
    for _ in range(ninstr):
        instr, offset = _decode_instruction(data, offset, strings)
        instructions.append(instr)
    program = Program(name=name, instructions=tuple(instructions), labels=labels)
    program.validate()
    return program


def _encode_instruction(instr: Instruction, table: _StringTable) -> bytes:
    out = bytearray()
    out.append(_OPCODE_INDEX[instr.opcode])
    flags = 0
    if instr.pred is not None:
        flags |= _FLAG_PRED
        if instr.pred.negate:
            flags |= _FLAG_PRED_NEG
    if instr.cond is not None:
        flags |= _FLAG_COND
    if instr.block is not None:
        flags |= _FLAG_BLOCK
    out.append(flags)
    if instr.pred is not None:
        out.append(instr.pred.index)
    if instr.cond is not None:
        out.append(_COND_INDEX[instr.cond])
    out += struct.pack("<H", instr.width)
    if instr.block is not None:
        out += struct.pack("<HH", *instr.block)
    out.append(_DTYPE_INDEX[instr.dtype])
    out.append(len(instr.dsts))
    out.append(len(instr.srcs))
    for op in instr.dsts:
        out += _encode_operand(op, table)
    for op in instr.srcs:
        out += _encode_operand(op, table)
    out += struct.pack("<I", instr.line)
    return bytes(out)


def _decode_instruction(data: bytes, offset: int, strings: List[str]) -> Tuple[Instruction, int]:
    opcode = _OPCODES[data[offset]]
    flags = data[offset + 1]
    offset += 2
    pred = None
    if flags & _FLAG_PRED:
        pred = Predication(data[offset], negate=bool(flags & _FLAG_PRED_NEG))
        offset += 1
    cond = None
    if flags & _FLAG_COND:
        cond = _CONDS[data[offset]]
        offset += 1
    (width,) = struct.unpack_from("<H", data, offset)
    offset += 2
    block = None
    if flags & _FLAG_BLOCK:
        block = tuple(struct.unpack_from("<HH", data, offset))
        offset += 4
    dtype = _DTYPES[data[offset]]
    ndst, nsrc = data[offset + 1], data[offset + 2]
    offset += 3
    dsts = []
    for _ in range(ndst):
        op, offset = _decode_operand(data, offset, strings)
        dsts.append(op)
    srcs = []
    for _ in range(nsrc):
        op, offset = _decode_operand(data, offset, strings)
        srcs.append(op)
    (line,) = struct.unpack_from("<I", data, offset)
    offset += 4
    return (
        Instruction(opcode, width, dtype, tuple(dsts), tuple(srcs), pred,
                    cond, block, line),
        offset,
    )


def _encode_operand(op: Operand, table: _StringTable) -> bytes:
    if isinstance(op, RegOperand):
        return struct.pack("<BH", _TAG_REG, op.reg)
    if isinstance(op, RangeOperand):
        return struct.pack("<BHH", _TAG_RANGE, op.start, op.stop)
    if isinstance(op, ImmOperand):
        return struct.pack("<Bd", _TAG_IMM, op.value)
    if isinstance(op, SymOperand):
        return struct.pack("<BI", _TAG_SYM, table.intern(op.name))
    if isinstance(op, PredOperand):
        return struct.pack("<BB", _TAG_PRED, op.index)
    if isinstance(op, LabelOperand):
        return struct.pack("<BI", _TAG_LABEL, table.intern(op.name))
    if isinstance(op, MemOperand):
        return (
            struct.pack("<BI", _TAG_MEM, table.intern(op.surface))
            + _encode_operand(op.index, table)
            + struct.pack("<i", op.offset)
        )
    if isinstance(op, BlockOperand):
        return (
            struct.pack("<BI", _TAG_BLOCK, table.intern(op.surface))
            + _encode_operand(op.x, table)
            + _encode_operand(op.y, table)
        )
    if isinstance(op, ShredRegOperand):
        return (
            struct.pack("<B", _TAG_SHREDREG)
            + _encode_operand(op.target, table)
            + struct.pack("<H", op.reg)
        )
    raise EncodingError(f"cannot encode operand {op!r}")


def _decode_operand(data: bytes, offset: int, strings: List[str]) -> Tuple[Operand, int]:
    tag = data[offset]
    offset += 1
    if tag == _TAG_REG:
        (reg,) = struct.unpack_from("<H", data, offset)
        return RegOperand(reg), offset + 2
    if tag == _TAG_RANGE:
        start, stop = struct.unpack_from("<HH", data, offset)
        return RangeOperand(start, stop), offset + 4
    if tag == _TAG_IMM:
        (value,) = struct.unpack_from("<d", data, offset)
        return ImmOperand(value), offset + 8
    if tag == _TAG_SYM:
        (strid,) = struct.unpack_from("<I", data, offset)
        return SymOperand(strings[strid]), offset + 4
    if tag == _TAG_PRED:
        return PredOperand(data[offset]), offset + 1
    if tag == _TAG_LABEL:
        (strid,) = struct.unpack_from("<I", data, offset)
        return LabelOperand(strings[strid]), offset + 4
    if tag == _TAG_MEM:
        (strid,) = struct.unpack_from("<I", data, offset)
        index, offset2 = _decode_operand(data, offset + 4, strings)
        (off,) = struct.unpack_from("<i", data, offset2)
        return MemOperand(strings[strid], index, off), offset2 + 4
    if tag == _TAG_BLOCK:
        (strid,) = struct.unpack_from("<I", data, offset)
        x, offset2 = _decode_operand(data, offset + 4, strings)
        y, offset3 = _decode_operand(data, offset2, strings)
        return BlockOperand(strings[strid], x, y), offset3
    if tag == _TAG_SHREDREG:
        target, offset2 = _decode_operand(data, offset, strings)
        (reg,) = struct.unpack_from("<H", data, offset2)
        return ShredRegOperand(target, reg), offset2 + 2
    raise EncodingError(f"unknown operand tag {tag}")
