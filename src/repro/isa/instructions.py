"""Instruction objects: one decoded accelerator instruction."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .opcodes import OP_INFO, Condition, Opcode
from .operands import Operand
from .types import DataType


@dataclass(frozen=True)
class Predication:
    """An instruction guard ``(pK)`` or ``(!pK)``.

    A guarded instruction executes per lane where the predicate holds
    (ALU ops merge under the mask); control flow treats the guard as
    "any lane set" (or "no lane set" when negated).
    """

    index: int
    negate: bool = False

    def __str__(self) -> str:
        return f"({'!' if self.negate else ''}p{self.index})"


@dataclass(frozen=True)
class Instruction:
    """One accelerator instruction.

    ``width`` is the SIMD element count.  Block operations (``ldblk``,
    ``stblk``, ``sample``) carry a 2-D shape in ``block`` instead, and
    ``width`` is its element count (w*h).
    """

    opcode: Opcode
    width: int = 1
    dtype: DataType = DataType.DW
    dsts: Tuple[Operand, ...] = ()
    srcs: Tuple[Operand, ...] = ()
    pred: Optional[Predication] = None
    cond: Optional[Condition] = None
    block: Optional[Tuple[int, int]] = None  # (w, h) for block ops
    line: int = 0  # source line in the assembly text (debug info)

    @property
    def info(self):
        return OP_INFO[self.opcode]

    def mnemonic(self) -> str:
        """The dotted mnemonic, e.g. ``add.8.dw`` or ``ldblk.8x8.ub``."""
        parts = [self.opcode.value]
        if self.cond is not None:
            parts.append(self.cond.value)
        if self.block is not None:
            parts.append(f"{self.block[0]}x{self.block[1]}")
        elif self.opcode not in _WIDTHLESS:
            parts.append(str(self.width))
        if self.opcode not in _TYPELESS:
            parts.append(self.dtype.value)
        return ".".join(parts)

    def __str__(self) -> str:
        text = ""
        if self.pred is not None:
            if self.opcode is not Opcode.BR:
                text += f"{self.pred} "
            elif self.pred.negate:
                # negated branch guards re-parse via the prefix form
                text += f"{self.pred} "
        text += self.mnemonic()
        if self.opcode in (Opcode.ST, Opcode.STBLK, Opcode.SENDREG):
            # store-like: the memory/shred target sits left of '='
            text += f" {self.srcs[0]} = {self.srcs[1]}"
        elif self.opcode is Opcode.BR:
            text += f" p{self.pred.index if self.pred else 0}, {self.srcs[-1]}"
        elif self.dsts and self.srcs:
            text += (
                f" {', '.join(map(str, self.dsts))}"
                f" = {', '.join(map(str, self.srcs))}"
            )
        elif self.dsts:
            text += f" {', '.join(map(str, self.dsts))}"
        elif self.srcs:
            text += f" {', '.join(map(str, self.srcs))}"
        return text


#: Opcodes whose mnemonic carries no SIMD width component.
_WIDTHLESS = {
    Opcode.JMP,
    Opcode.BR,
    Opcode.END,
    Opcode.NOP,
    Opcode.FLUSH,
    Opcode.FENCE,
    Opcode.SPAWN,
}

#: Opcodes whose mnemonic carries no data-type component.
_TYPELESS = _WIDTHLESS | set()


@dataclass
class Effect:
    """What executing one instruction did — consumed by the timing model."""

    next_ip: Optional[int] = None  # taken branch target (instruction index)
    bytes_read: int = 0
    bytes_written: int = 0
    used_sampler: bool = False
    ended: bool = False
    spawned: list = field(default_factory=list)
    sent_registers: list = field(default_factory=list)  # (shred_id, reg)
    flushed_cache: bool = False
