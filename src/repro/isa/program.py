"""Assembled accelerator programs: validation, symbols, debug info."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

from ..errors import AssemblyError
from .instructions import Instruction
from .opcodes import Opcode
from .operands import (
    BlockOperand,
    LabelOperand,
    MemOperand,
    Operand,
    RangeOperand,
    RegOperand,
    ShredRegOperand,
    SymOperand,
)
from .types import NUM_VREGS, VLEN


@dataclass
class Program:
    """A validated sequence of accelerator instructions.

    Instances are produced by :func:`repro.isa.assembler.assemble` or by
    decoding a fat-binary code section.  ``labels`` maps label names to
    instruction indices; each instruction's ``line`` field maps back to the
    assembly source for the debugger.
    """

    name: str
    instructions: Tuple[Instruction, ...]
    labels: Dict[str, int] = field(default_factory=dict)
    source: str = ""

    def __len__(self) -> int:
        return len(self.instructions)

    def target(self, label: str) -> int:
        try:
            return self.labels[label]
        except KeyError:
            raise AssemblyError(f"undefined label {label!r}") from None

    # -- symbol discovery ----------------------------------------------------

    def scalar_symbols(self) -> Set[str]:
        """Names bound as scalar inputs (private/firstprivate variables)."""
        out: Set[str] = set()
        for instr in self.instructions:
            for op in instr.dsts + instr.srcs:
                out |= _scalar_syms(op)
        return out

    def surface_symbols(self) -> Set[str]:
        """Names of surfaces referenced by memory/block/sample operands."""
        out: Set[str] = set()
        for instr in self.instructions:
            for op in instr.dsts + instr.srcs:
                out |= _surface_syms(op)
        return out

    # -- validation -----------------------------------------------------------

    def validate(self) -> None:
        """Check branch targets, register bounds and width consistency."""
        for idx, instr in enumerate(self.instructions):
            where = f"{self.name}[{idx}] ({instr})"
            # horizontal reductions write a scalar result
            dst_width = (1 if instr.opcode in (Opcode.HADD, Opcode.HMAX)
                         else instr.width)
            for op in instr.dsts:
                self._validate_operand(op, instr, where, dst_width)
            # ilv sources each carry half the output elements
            src_width = (instr.width // 2 if instr.opcode is Opcode.ILV
                         else instr.width)
            for op in instr.srcs:
                self._validate_operand(op, instr, where, src_width)
            if instr.opcode in (Opcode.JMP, Opcode.BR):
                target = instr.srcs[-1]
                if not isinstance(target, LabelOperand):
                    raise AssemblyError(f"{where}: branch target is not a label")
                if target.name not in self.labels:
                    raise AssemblyError(
                        f"{where}: undefined label {target.name!r}")

    def _validate_operand(self, op: Operand, instr: Instruction, where: str,
                          width: int) -> None:
        if isinstance(op, RegOperand):
            if not 0 <= op.reg < NUM_VREGS:
                raise AssemblyError(f"{where}: vr{op.reg} out of range")
            if instr.block is None and instr.opcode is not Opcode.SENDREG:
                if width > VLEN and instr.opcode not in (
                        Opcode.LDBLK, Opcode.STBLK, Opcode.SAMPLE):
                    raise AssemblyError(
                        f"{where}: width {width} exceeds single-register "
                        f"vector length {VLEN}; use a register range")
        elif isinstance(op, RangeOperand):
            if not (0 <= op.start < NUM_VREGS and 0 <= op.stop < NUM_VREGS):
                raise AssemblyError(f"{where}: register range {op} out of bounds")
            packed_regs = -(-width // VLEN)
            if op.count != width and op.count != packed_regs:
                raise AssemblyError(
                    f"{where}: register range {op} has {op.count} registers; "
                    f"width {width} needs {width} (per-register form) or "
                    f"{packed_regs} (packed form)")
        elif isinstance(op, MemOperand):
            self._validate_operand(op.index, instr, where, 1)
        elif isinstance(op, BlockOperand):
            self._validate_operand(op.x, instr, where, 1)
            self._validate_operand(op.y, instr, where, 1)
        elif isinstance(op, ShredRegOperand):
            self._validate_operand(op.target, instr, where, 1)
            if not 0 <= op.reg < NUM_VREGS:
                raise AssemblyError(f"{where}: vr{op.reg} out of range")

    # -- debug info ------------------------------------------------------------

    def source_line(self, ip: int) -> str:
        """The assembly source line for instruction index ``ip``."""
        if not 0 <= ip < len(self.instructions):
            return ""
        lineno = self.instructions[ip].line
        lines = self.source.splitlines()
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1].strip()
        return str(self.instructions[ip])


def _scalar_syms(op: Operand) -> Set[str]:
    if isinstance(op, SymOperand):
        return {op.name}
    if isinstance(op, MemOperand):
        return _scalar_syms(op.index)
    if isinstance(op, BlockOperand):
        return _scalar_syms(op.x) | _scalar_syms(op.y)
    if isinstance(op, ShredRegOperand):
        return _scalar_syms(op.target)
    return set()


def _surface_syms(op: Operand) -> Set[str]:
    if isinstance(op, MemOperand):
        return {op.surface}
    if isinstance(op, BlockOperand):
        return {op.surface}
    return set()
