"""Two-pass text assembler for the accelerator ISA.

The accepted syntax is the one used by the paper's listings (Figure 6):

.. code-block:: none

    loop:
        shl.1.w    vr1 = i, 3
        ld.8.dw    [vr2..vr9]   = (A, vr1, 0)
        ld.8.dw    [vr10..vr17] = (B, vr1, 0)
        add.8.dw   [vr18..vr25] = [vr2..vr9], [vr10..vr17]
        st.8.dw    (C, vr1, 0)  = [vr18..vr25]
        end

Extensions needed by the media kernels: 2-D block transfers
(``ldblk.8x8.ub [vr2..vr5] = (SRC, vr0, vr1)``), the texture sampler
(``sample.4.f ...``), predication (``(p1) add...``), comparisons
(``cmp.lt.8.dw p1 = a, b``), branches (``br p1, loop``), cross-shred
register writes (``sendreg.1.dw (vr6, vr7) = vr5``) and shred spawning.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..errors import AssemblyError
from .instructions import Instruction, Predication
from .opcodes import Condition, Opcode, opcode_from_mnemonic
from .operands import (
    BlockOperand,
    ImmOperand,
    LabelOperand,
    MemOperand,
    Operand,
    PredOperand,
    RangeOperand,
    RegOperand,
    ShredRegOperand,
    SymOperand,
)
from .program import Program
from .types import DataType

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):\s*(.*)$")
_PRED_RE = re.compile(r"^\(\s*(!?)\s*p(\d+)\s*\)\s*(.*)$")
_REG_RE = re.compile(r"^vr(\d+)$")
_RANGE_RE = re.compile(r"^\[\s*vr(\d+)\s*\.\.\s*vr(\d+)\s*\]$")
_PREG_RE = re.compile(r"^p(\d+)$")
_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_BLOCK_RE = re.compile(r"^(\d+)x(\d+)$")

#: Opcodes whose left-hand side of ``=`` is a destination in *memory* (or
#: another shred's registers), so it is carried as a source operand.
_STORE_LIKE = {Opcode.ST, Opcode.STBLK, Opcode.SENDREG}

_WIDTHLESS = {Opcode.JMP, Opcode.BR, Opcode.END, Opcode.NOP, Opcode.FLUSH,
              Opcode.FENCE, Opcode.SPAWN}


def assemble(text: str, name: str = "<asm>") -> Program:
    """Assemble ISA text into a validated :class:`~repro.isa.program.Program`."""
    instructions: List[Instruction] = []
    labels = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        match = _LABEL_RE.match(line)
        if match and not _looks_like_instruction(match.group(1)):
            label, rest = match.group(1), match.group(2).strip()
            if label in labels:
                raise AssemblyError(f"duplicate label {label!r}", lineno)
            labels[label] = len(instructions)
            line = rest
            if not line:
                continue
        instructions.append(_parse_instruction(line, lineno))
    program = Program(name=name, instructions=tuple(instructions), labels=labels,
                      source=text)
    program.validate()
    return program


def _strip_comment(line: str) -> str:
    for marker in ("#", "//", ";"):
        idx = line.find(marker)
        if idx >= 0:
            line = line[:idx]
    return line


def _looks_like_instruction(word: str) -> bool:
    """Labels can't shadow mnemonics; ``end:`` would be ambiguous."""
    try:
        opcode_from_mnemonic(word)
        return True
    except ValueError:
        return False


def _parse_instruction(line: str, lineno: int) -> Instruction:
    pred: Optional[Predication] = None
    match = _PRED_RE.match(line)
    if match:
        pred = Predication(index=int(match.group(2)), negate=bool(match.group(1)))
        line = match.group(3)

    parts = line.split(None, 1)
    mnemonic = parts[0]
    operand_text = parts[1].strip() if len(parts) > 1 else ""

    opcode, cond, width, dtype, block = _parse_mnemonic(mnemonic, lineno)

    lhs, rhs = _split_equals(operand_text, lineno)
    lhs_ops = [_parse_operand(tok, lineno) for tok in _split_commas(lhs)]
    rhs_ops = [_parse_operand(tok, lineno) for tok in _split_commas(rhs)]

    instr = _build(opcode, cond, width, dtype, block, pred,
                   lhs_ops, rhs_ops, lineno)
    _check_arity(instr, lineno)
    return instr


def _parse_mnemonic(mnemonic: str, lineno: int):
    parts = mnemonic.split(".")
    try:
        opcode = opcode_from_mnemonic(parts[0])
    except ValueError as exc:
        raise AssemblyError(str(exc), lineno) from None
    idx = 1
    cond = None
    if opcode is Opcode.CMP:
        if len(parts) < 2:
            raise AssemblyError("cmp requires a condition, e.g. cmp.lt.8.dw", lineno)
        try:
            cond = Condition(parts[idx])
        except ValueError:
            raise AssemblyError(f"unknown cmp condition {parts[idx]!r}", lineno)
        idx += 1

    width, block = 1, None
    dtype = DataType.DW
    if opcode in _WIDTHLESS:
        if len(parts) > idx:
            raise AssemblyError(
                f"{opcode.value} takes no width/type suffix", lineno)
        return opcode, cond, width, dtype, block

    if len(parts) <= idx:
        raise AssemblyError(f"{opcode.value} requires .width.type suffix", lineno)
    wtok = parts[idx]
    idx += 1
    bmatch = _BLOCK_RE.match(wtok)
    if bmatch:
        block = (int(bmatch.group(1)), int(bmatch.group(2)))
        width = block[0] * block[1]
        if width == 0:
            raise AssemblyError("block dimensions must be positive", lineno)
    else:
        try:
            width = int(wtok)
        except ValueError:
            raise AssemblyError(f"bad SIMD width {wtok!r}", lineno)
        if width < 1:
            raise AssemblyError(f"SIMD width must be positive, got {width}", lineno)

    if len(parts) <= idx:
        raise AssemblyError(f"{opcode.value} requires a data type suffix", lineno)
    try:
        dtype = DataType.from_suffix(parts[idx])
    except ValueError as exc:
        raise AssemblyError(str(exc), lineno) from None
    if len(parts) > idx + 1:
        raise AssemblyError(f"trailing mnemonic parts in {mnemonic!r}", lineno)

    if block is not None and opcode not in (Opcode.LDBLK, Opcode.STBLK):
        raise AssemblyError(f"{opcode.value} does not accept WxH block shape", lineno)
    return opcode, cond, width, dtype, block


def _split_equals(text: str, lineno: int) -> Tuple[str, str]:
    depth = 0
    for i, ch in enumerate(text):
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        elif ch == "=" and depth == 0:
            return text[:i].strip(), text[i + 1 :].strip()
    return text.strip(), ""


def _split_commas(text: str) -> List[str]:
    if not text:
        return []
    out, depth, start = [], 0, 0
    for i, ch in enumerate(text):
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        elif ch == "," and depth == 0:
            out.append(text[start:i].strip())
            start = i + 1
    out.append(text[start:].strip())
    return [tok for tok in out if tok]


def _parse_operand(token: str, lineno: int) -> Operand:
    match = _REG_RE.match(token)
    if match:
        return RegOperand(int(match.group(1)))
    match = _RANGE_RE.match(token)
    if match:
        start, stop = int(match.group(1)), int(match.group(2))
        if stop < start:
            raise AssemblyError(f"empty register range {token!r}", lineno)
        return RangeOperand(start, stop)
    match = _PREG_RE.match(token)
    if match:
        return PredOperand(int(match.group(1)))
    if token.startswith("("):
        if not token.endswith(")"):
            raise AssemblyError(f"unbalanced parentheses in {token!r}", lineno)
        inner = _split_commas(token[1:-1])
        return _TupleOperand(tuple(_parse_operand(t, lineno) for t in inner))
    imm = _try_number(token)
    if imm is not None:
        return ImmOperand(imm)
    if _IDENT_RE.match(token):
        return SymOperand(token)
    raise AssemblyError(f"cannot parse operand {token!r}", lineno)


class _TupleOperand(Operand):
    """Intermediate form for parenthesized operands, fixed up per opcode."""

    def __init__(self, items: tuple):
        self.items = items


def _try_number(token: str) -> Optional[float]:
    try:
        if token.lower().startswith("0x") or token.lower().startswith("-0x"):
            return float(int(token, 16))
        return float(int(token))
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        return None


def _fix_tuple(op: Operand, opcode: Opcode, lineno: int) -> Operand:
    """Resolve a parenthesized operand into its opcode-specific meaning."""
    if not isinstance(op, _TupleOperand):
        return op
    items = op.items
    if opcode in (Opcode.LD, Opcode.ST):
        if len(items) != 3 or not isinstance(items[2], ImmOperand):
            raise AssemblyError(
                "ld/st memory operand must be (surface, index, offset)", lineno)
        surface = _surface_name(items[0], lineno)
        return MemOperand(surface, items[1], int(items[2].value))
    if opcode in (Opcode.LDBLK, Opcode.STBLK, Opcode.SAMPLE):
        if len(items) != 3:
            raise AssemblyError(
                "block operand must be (surface, x, y)", lineno)
        surface = _surface_name(items[0], lineno)
        return BlockOperand(surface, items[1], items[2])
    if opcode is Opcode.SENDREG:
        if len(items) != 2 or not isinstance(items[1], RegOperand):
            raise AssemblyError(
                "sendreg target must be (shred, vrN)", lineno)
        return ShredRegOperand(items[0], items[1].reg)
    raise AssemblyError(
        f"{opcode.value} does not take a parenthesized operand", lineno)


def _surface_name(op: Operand, lineno: int) -> str:
    if isinstance(op, SymOperand):
        return op.name
    raise AssemblyError("surface must be a symbol name", lineno)


def _build(opcode, cond, width, dtype, block, pred, lhs_ops, rhs_ops, lineno):
    lhs_ops = [_fix_tuple(op, opcode, lineno) for op in lhs_ops]
    rhs_ops = [_fix_tuple(op, opcode, lineno) for op in rhs_ops]

    if opcode is Opcode.JMP:
        target = _as_label(lhs_ops, lineno, "jmp")
        return Instruction(opcode, 1, dtype, (), (target,), pred, line=lineno)
    if opcode is Opcode.BR:
        if len(lhs_ops) != 2 or rhs_ops:
            raise AssemblyError("br expects: br pN, target", lineno)
        guard, target = lhs_ops
        negate = False
        if isinstance(guard, SymOperand) and guard.name.startswith("!"):
            raise AssemblyError("use (!pN) prefix form for negated br", lineno)
        if not isinstance(guard, PredOperand):
            raise AssemblyError("br guard must be a predicate register", lineno)
        target = _to_label(target, lineno, "br")
        return Instruction(opcode, 1, dtype, (), (guard, target),
                           pred or Predication(guard.index, negate), line=lineno)

    if opcode in _STORE_LIKE:
        # st (C, vr1, 0) = [vr18..vr25]: memory target first, value second.
        if len(lhs_ops) != 1 or len(rhs_ops) != 1:
            raise AssemblyError(
                f"{opcode.value} expects: {opcode.value} <target> = <value>", lineno)
        return Instruction(opcode, width, dtype, (), (lhs_ops[0], rhs_ops[0]),
                           pred, cond, block, line=lineno)

    if opcode is Opcode.IOTA:
        # destination-only: iota.16.f vr1
        if len(lhs_ops) != 1 or rhs_ops:
            raise AssemblyError("iota expects exactly one destination", lineno)
        return Instruction(opcode, width, dtype, tuple(lhs_ops), (), pred,
                           line=lineno)
    if not rhs_ops and opcode not in (Opcode.END, Opcode.NOP, Opcode.FLUSH,
                                      Opcode.FENCE, Opcode.SPAWN):
        if lhs_ops:
            raise AssemblyError(
                f"{opcode.value} requires '=' between destination and sources",
                lineno)
        return Instruction(opcode, width, dtype, (), (), pred, cond, block,
                           line=lineno)
    if opcode is Opcode.SPAWN:
        if len(lhs_ops) != 1 or rhs_ops:
            raise AssemblyError("spawn expects one source operand", lineno)
        return Instruction(opcode, 1, dtype, (), tuple(lhs_ops), pred, line=lineno)
    if opcode in (Opcode.END, Opcode.NOP, Opcode.FLUSH, Opcode.FENCE):
        if lhs_ops or rhs_ops:
            raise AssemblyError(f"{opcode.value} takes no operands", lineno)
        return Instruction(opcode, 1, dtype, (), (), pred, line=lineno)

    return Instruction(opcode, width, dtype, tuple(lhs_ops), tuple(rhs_ops),
                       pred, cond, block, line=lineno)


def _as_label(ops: list, lineno: int, what: str) -> LabelOperand:
    if len(ops) != 1:
        raise AssemblyError(f"{what} expects exactly one target", lineno)
    return _to_label(ops[0], lineno, what)


def _to_label(op: Operand, lineno: int, what: str) -> LabelOperand:
    if isinstance(op, SymOperand):
        return LabelOperand(op.name)
    if isinstance(op, LabelOperand):
        return op
    raise AssemblyError(f"{what} target must be a label name", lineno)


def _check_arity(instr: Instruction, lineno: int) -> None:
    info = instr.info
    if info.has_dst and not instr.dsts:
        raise AssemblyError(f"{instr.opcode.value} requires a destination", lineno)
    if not info.has_dst and instr.dsts:
        raise AssemblyError(f"{instr.opcode.value} takes no destination", lineno)
    if info.n_src >= 0 and len(instr.srcs) != info.n_src:
        raise AssemblyError(
            f"{instr.opcode.value} takes {info.n_src} source(s), "
            f"got {len(instr.srcs)}", lineno)
    for op in instr.dsts + instr.srcs:
        if isinstance(op, _TupleOperand):
            raise AssemblyError(
                f"unexpected parenthesized operand for {instr.opcode.value}", lineno)
