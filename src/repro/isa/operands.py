"""Operand forms of the accelerator ISA.

Operands are pure descriptions; reading and writing values goes through an
execution context object (see :class:`ExecContext`) supplied by whichever
backend is interpreting the program (the GMA device model, the debugger's
single-stepper, or a bare functional evaluator in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from ..errors import ExecutionFault
from .types import VLEN, DataType


class ExecContext(Protocol):
    """What an operand needs from the machine interpreting it.

    The GMA interpreter implements this with full timing and translation;
    tests may implement it with plain dictionaries.
    """

    regs: "object"  # RegisterFile

    def resolve_symbol(self, name: str) -> float:
        """Value of a bound scalar symbol (private/firstprivate variable)."""
        ...

    def surface_read(self, name: str, index: int, count: int, ty: DataType) -> np.ndarray:
        """Read ``count`` elements of a linear surface starting at ``index``."""
        ...

    def surface_write(self, name: str, index: int, values: np.ndarray, ty: DataType) -> None:
        ...

    def surface_read_block(
        self, name: str, x: int, y: int, w: int, h: int, ty: DataType
    ) -> np.ndarray:
        """Read a ``w``x``h`` block at (x, y) of a 2-D surface, row-major."""
        ...

    def surface_write_block(
        self, name: str, x: int, y: int, values: np.ndarray, w: int, h: int, ty: DataType
    ) -> None:
        ...

    def sample(self, name: str, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Fixed-function bilinear texture sample at fractional coordinates."""
        ...

    def send_register(self, shred_id: int, reg: int, values: np.ndarray) -> None:
        """Write into another shred's register file (producer-consumer)."""
        ...

    def spawn_shred(self, arg: float) -> None:
        """Spawn a sibling shred (GMA shreds may spawn GMA shreds)."""
        ...

    def flush_device_cache(self) -> None:
        ...


class Operand:
    """Base class; concrete operands implement read and/or write."""

    def read(self, ctx: ExecContext, n: int) -> np.ndarray:
        raise ExecutionFault(f"operand {self!r} is not readable")

    def write(self, ctx: ExecContext, values: np.ndarray, ty: DataType) -> None:
        raise ExecutionFault(f"operand {self!r} is not writable")


@dataclass(frozen=True)
class RegOperand(Operand):
    """A single vector register ``vrN``: lanes 0..n-1 (scalar when n == 1)."""

    reg: int

    def read(self, ctx: ExecContext, n: int) -> np.ndarray:
        return ctx.regs.read_lanes(self.reg, n)

    def write(self, ctx: ExecContext, values: np.ndarray, ty: DataType) -> None:
        ctx.regs.write_lanes(self.reg, ty.wrap(values))

    def __str__(self) -> str:
        return f"vr{self.reg}"


@dataclass(frozen=True)
class RangeOperand(Operand):
    """A register range ``[vrA..vrB]``.

    Two vector interpretations exist, selected by the instruction width n:

    * **per-register** (n == number of registers): one element per named
      register, lane 0 of each — the paper's Figure 6 form
      (``add.8.dw [vr18..vr25] = ...``);
    * **packed** (ceil(n / VLEN) == number of registers): n elements packed
      across all 16 lanes of consecutive registers — the macroblock form
      used with ``ldblk``/``stblk`` and wide ALU ops, e.g.
      ``add.64.uw [vr40..vr43] = ...`` (64 elements in 4 registers).
    """

    start: int
    stop: int

    @property
    def count(self) -> int:
        return self.stop - self.start + 1

    def _packed(self, n: int) -> bool:
        if n == self.count:
            return False
        if -(-n // VLEN) == self.count:
            return True
        raise ExecutionFault(
            f"width {n} matches register range {self} neither per-register "
            f"({self.count}) nor packed ({self.count * VLEN} lanes)")

    def read(self, ctx: ExecContext, n: int) -> np.ndarray:
        if self._packed(n):
            return ctx.regs.read_block(self.start, n)
        return ctx.regs.read_range(self.start, self.stop)

    def write(self, ctx: ExecContext, values: np.ndarray, ty: DataType) -> None:
        values = np.asarray(values)
        if self._packed(values.size):
            ctx.regs.write_block(self.start, ty.wrap(values))
        else:
            ctx.regs.write_range(self.start, self.stop, ty.wrap(values))

    def read_packed(self, ctx: ExecContext, count: int) -> np.ndarray:
        """Block (``ldblk``/``stblk``) packing: 16 lanes per register."""
        return ctx.regs.read_block(self.start, count)

    def write_packed(self, ctx: ExecContext, values: np.ndarray, ty: DataType) -> None:
        ctx.regs.write_block(self.start, ty.wrap(values))

    def __str__(self) -> str:
        return f"[vr{self.start}..vr{self.stop}]"


@dataclass(frozen=True)
class ImmOperand(Operand):
    """An immediate constant, broadcast to the instruction width."""

    value: float

    def read(self, ctx: ExecContext, n: int) -> np.ndarray:
        return np.full(n, self.value, dtype=np.float64)

    def __str__(self) -> str:
        if self.value == int(self.value):
            return str(int(self.value))
        return repr(self.value)


@dataclass(frozen=True)
class SymOperand(Operand):
    """A bound symbol (a private/firstprivate variable), broadcast."""

    name: str

    def read(self, ctx: ExecContext, n: int) -> np.ndarray:
        return np.full(n, ctx.resolve_symbol(self.name), dtype=np.float64)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class MemOperand(Operand):
    """A linear surface reference ``(S, index, offset)``.

    ``index`` is a scalar operand (register, symbol or immediate); the
    effective element index is ``index + offset``.  Used by ``ld``/``st``.
    """

    surface: str
    index: Operand
    offset: int

    def element_index(self, ctx: ExecContext) -> int:
        return int(self.index.read(ctx, 1)[0]) + self.offset

    def __str__(self) -> str:
        return f"({self.surface}, {self.index}, {self.offset})"


@dataclass(frozen=True)
class BlockOperand(Operand):
    """A 2-D surface block reference ``(S, x, y)`` for ldblk/stblk/sample."""

    surface: str
    x: Operand
    y: Operand

    def coords(self, ctx: ExecContext) -> tuple:
        return (int(self.x.read(ctx, 1)[0]), int(self.y.read(ctx, 1)[0]))

    def __str__(self) -> str:
        return f"({self.surface}, {self.x}, {self.y})"


@dataclass(frozen=True)
class PredOperand(Operand):
    """A predicate register ``pN`` (destination of cmp, source of sel/br)."""

    index: int

    def read(self, ctx: ExecContext, n: int) -> np.ndarray:
        return ctx.regs.read_pred(self.index, n).astype(np.float64)

    def read_mask(self, ctx: ExecContext, n: int) -> np.ndarray:
        return ctx.regs.read_pred(self.index, n)

    def write_mask(self, ctx: ExecContext, mask: np.ndarray) -> None:
        ctx.regs.write_pred(self.index, mask)

    def __str__(self) -> str:
        return f"p{self.index}"


@dataclass(frozen=True)
class ShredRegOperand(Operand):
    """``(target, vrD)``: a register in another shred's file (sendreg)."""

    target: Operand  # scalar shred id
    reg: int

    def __str__(self) -> str:
        return f"({self.target}, vr{self.reg})"


@dataclass(frozen=True)
class LabelOperand(Operand):
    """A branch target, resolved by the assembler to an instruction index."""

    name: str

    def __str__(self) -> str:
        return self.name
