"""The accelerator instruction set: types, assembler, encoder, semantics.

This package is the reproduction of the GMA X3000 ISA surface that CHI's
inline-assembly support targets (paper section 4.1).  The public entry
points are :func:`assemble`, :func:`disassemble`, :func:`encode_program`
and :func:`decode_program`.
"""

from .assembler import assemble
from .disassembler import disassemble
from .encoding import decode_program, encode_program
from .instructions import Effect, Instruction, Predication
from .opcodes import OP_INFO, Condition, Opcode, OpKind
from .operands import (
    BlockOperand,
    ImmOperand,
    LabelOperand,
    MemOperand,
    Operand,
    PredOperand,
    RangeOperand,
    RegOperand,
    ShredRegOperand,
    SymOperand,
)
from .program import Program
from .registers import RegisterFile
from .semantics import execute
from .types import LANE_BYTES, NUM_PREGS, NUM_VREGS, VLEN, DataType

__all__ = [
    "assemble",
    "disassemble",
    "encode_program",
    "decode_program",
    "execute",
    "Effect",
    "Instruction",
    "Predication",
    "Opcode",
    "OpKind",
    "Condition",
    "OP_INFO",
    "Operand",
    "RegOperand",
    "RangeOperand",
    "ImmOperand",
    "SymOperand",
    "MemOperand",
    "BlockOperand",
    "PredOperand",
    "ShredRegOperand",
    "LabelOperand",
    "Program",
    "RegisterFile",
    "DataType",
    "NUM_VREGS",
    "NUM_PREGS",
    "VLEN",
    "LANE_BYTES",
]
