"""Auto-tuner: search a small schedule space per kernel program.

The schedule-transform layer (:mod:`repro.isa.transforms`) gives every
kernel a space of semantically-equal programs; this module picks one.
The search is deliberately tiny — a fixed menu of schedule specs in the
spirit of Exo's user-schedulable transforms — and is scored against the
EU timing model (:func:`repro.isa.scheduler.estimated_serial_cycles`'
pending-latency walk) weighted by loop trip counts, so an instruction
inside a 100-trip loop costs 100× its straight-line estimate.

Winners are cached at module level keyed on the program *source* and the
scalar bindings that resolve its loop bounds, so a serving layer or a
multi-frame harness tunes each kernel once.  An optional ``verifier``
callback lets callers demand end-to-end bit-exactness before a candidate
may win (the kernel harness wires a one-frame differential check in).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from .opcodes import Opcode
from .operands import ImmOperand, PredOperand, RegOperand
from .program import Program
from .scheduler import instruction_effects
from .transforms import (
    BASELINE,
    Schedule,
    ScheduleError,
    _resolve_bound,
    _trip_count,
    apply_schedule,
    parse_schedule,
)

#: Trip weight assumed for a counted loop whose bound is symbolic and
#: unresolved by the caller's bindings.
DEFAULT_TRIP = 16

#: The schedule menu.  Order matters only for tie-breaks (first wins);
#: ``baseline`` is always implicitly included and is the fallback when
#: every transforming candidate fails to apply or verify.
DEFAULT_CANDIDATES: Tuple[str, ...] = (
    "baseline",
    "reorder",
    "replace_avg+replace_mad",
    "unroll2",
    "unroll4",
    "stage_mem",
    "stage_mem+unroll4",
    "unroll4+stage_mem",
    "unroll8+stage_mem",
    "unroll8+stage_mem+reorder",
)


@dataclass(frozen=True)
class TuningResult:
    """Outcome of one :func:`tune_program` call."""

    schedule: Schedule
    spec: str
    program: Program
    trials: int  #: candidates actually transformed+scored (0 on cache hit)
    cached: bool
    cost: float
    baseline_cost: float

    @property
    def estimated_speedup(self) -> float:
        if self.cost <= 0:
            return 1.0
        return self.baseline_cost / self.cost


#: winner cache: (name, source, bindings-key, candidates) -> TuningResult
_CACHE: Dict[tuple, TuningResult] = {}


def clear_cache() -> None:
    _CACHE.clear()


def cache_stats() -> Dict[str, int]:
    return {"entries": len(_CACHE)}


def _bindings_key(bindings: Optional[Dict[str, float]]) -> tuple:
    if not bindings:
        return ()
    items = []
    for name, value in bindings.items():
        try:
            items.append((name, float(value)))
        except (TypeError, ValueError):
            continue
    return tuple(sorted(items))


def _backedge_trip(program: Program, head: int, back: int,
                   bindings: Optional[Dict[str, float]]) -> Optional[int]:
    """Trip estimate for the backward branch ``back`` → label at ``head``.

    Looser than :func:`~repro.isa.transforms.find_counted_loops` on
    purpose: an unrolled loop steps its induction variable with *several*
    adds per iteration, so this sums every ``add.1 ind = ind, imm`` in
    the span instead of demanding exactly one.  Cost-model only — the
    transforms themselves still use the strict recognizer.
    """
    instrs = program.instructions
    br = instrs[back]
    if br.pred is None or br.pred.negate:
        return None
    cmp = None
    for ip in range(back - 1, head - 1, -1):
        if br.pred.index in instruction_effects(instrs[ip]).pred_defs:
            cmp = instrs[ip]
            break
    if (cmp is None or cmp.opcode is not Opcode.CMP or cmp.width != 1
            or cmp.cond is None or not cmp.dsts
            or not isinstance(cmp.dsts[0], PredOperand)
            or not isinstance(cmp.srcs[0], RegOperand)):
        return None
    ind = cmp.srcs[0].reg
    step = 0.0
    for ip in range(head, back):
        ins = instrs[ip]
        if (ins.opcode is Opcode.ADD and ins.width == 1 and ins.pred is None
                and isinstance(ins.dsts[0], RegOperand)
                and ins.dsts[0].reg == ind
                and isinstance(ins.srcs[0], RegOperand)
                and ins.srcs[0].reg == ind
                and isinstance(ins.srcs[1], ImmOperand)):
            step += float(ins.srcs[1].value)
        elif ind in instruction_effects(ins).reg_defs:
            return None  # non-affine write to the induction variable
    if step <= 0:
        return None
    init = None
    for ip in range(head - 1, -1, -1):
        ins = instrs[ip]
        if ind in instruction_effects(ins).reg_defs:
            if (ins.opcode is Opcode.MOV and ins.width == 1
                    and ins.pred is None
                    and isinstance(ins.srcs[0], ImmOperand)):
                init = float(ins.srcs[0].value)
            break
    if init is None:
        return None
    bound = _resolve_bound(cmp.srcs[1], bindings)
    return _trip_count(init, step, bound, cmp.cond)


def _loop_weights(program: Program,
                  bindings: Optional[Dict[str, float]],
                  default_trip: int) -> list:
    """Per-instruction execution-count weights from backward branches.

    Every backward branch span multiplies its body's weight by the
    estimated trip count; nested spans compose multiplicatively.
    """
    weight = [1.0] * len(program.instructions)
    for back, instr in enumerate(program.instructions):
        if instr.opcode not in (Opcode.BR, Opcode.JMP):
            continue
        target = getattr(instr.srcs[-1], "name", None)
        head = program.labels.get(target) if target else None
        if head is None or head > back:
            continue
        trip = _backedge_trip(program, head, back, bindings)
        if trip is None:
            trip = default_trip
        for ip in range(head, back + 1):
            weight[ip] *= max(trip, 1)
    return weight


def estimated_program_cost(program: Program,
                           bindings: Optional[Dict[str, float]] = None,
                           default_trip: int = DEFAULT_TRIP) -> float:
    """Trip-weighted serial-cycle estimate of one program execution.

    A linear pending-latency walk (the :mod:`repro.isa.scheduler` model)
    yields each instruction's incremental cycles — issue cost plus any
    stall waiting on a producer's latency — and that increment is scaled
    by the product of the trip counts of every loop (backward-branch
    span) containing the instruction.  Unknown trips weigh
    ``default_trip``.
    """
    weight = _loop_weights(program, bindings, default_trip)

    total = 0.0
    pending: Dict[int, float] = {}  # reg -> cycle its value is ready
    clock = 0.0
    for ip, instr in enumerate(program.instructions):
        effects = instruction_effects(instr)
        stall = 0.0
        for reg in effects.reg_uses:
            if reg in pending:
                stall = max(stall, pending[reg] - clock)
        increment = stall + instr.info.issue
        clock += increment
        for reg in effects.reg_defs:
            pending[reg] = clock + instr.info.latency
        total += increment * weight[ip]
    return total


def tune_program(program: Program,
                 bindings: Optional[Dict[str, float]] = None,
                 candidates: Optional[Sequence[str]] = None,
                 verifier: Optional[Callable[[Program], bool]] = None,
                 use_cache: bool = True) -> TuningResult:
    """Pick the cheapest legal schedule for ``program``.

    Every candidate spec is parsed, applied (specs that raise
    :class:`~repro.isa.transforms.ScheduleError` — e.g. register
    pressure — are skipped), and scored with
    :func:`estimated_program_cost`.  Candidates are then considered
    cheapest-first; the first one accepted by ``verifier`` (always, when
    no verifier is given) wins.  The unscheduled baseline is always a
    candidate and always verifies, so tuning cannot fail.
    """
    menu = tuple(candidates) if candidates is not None else DEFAULT_CANDIDATES
    key = (program.name, program.source, _bindings_key(bindings), menu)
    if use_cache and key in _CACHE:
        hit = _CACHE[key]
        return TuningResult(schedule=hit.schedule, spec=hit.spec,
                            program=hit.program, trials=0, cached=True,
                            cost=hit.cost, baseline_cost=hit.baseline_cost)

    baseline_cost = estimated_program_cost(program, bindings)
    scored = [(baseline_cost, 0, "baseline", BASELINE, program)]
    trials = 1
    for order, spec in enumerate(menu):
        schedule = parse_schedule(spec)
        if not schedule.steps:
            continue  # baseline already scored
        try:
            candidate = apply_schedule(program, schedule, bindings)
        except ScheduleError:
            trials += 1
            continue
        if candidate is program:
            continue  # spec was a no-op on this kernel; identical to baseline
        trials += 1
        cost = estimated_program_cost(candidate, bindings)
        scored.append((cost, order + 1, spec, schedule, candidate))

    scored.sort(key=lambda row: (row[0], row[1]))
    result = None
    for cost, _order, spec, schedule, candidate in scored:
        if (verifier is not None and candidate is not program
                and not verifier(candidate)):
            continue
        result = TuningResult(schedule=schedule, spec=spec, program=candidate,
                              trials=trials, cached=False, cost=cost,
                              baseline_cost=baseline_cost)
        break
    assert result is not None  # baseline always survives
    if use_cache:
        _CACHE[key] = result
    return result


def resolve_schedule(program: Program, schedule,
                     bindings: Optional[Dict[str, float]] = None,
                     verifier: Optional[Callable[[Program], bool]] = None,
                     ) -> Tuple[Program, str, int]:
    """Shared plumbing for the harness / runtime / CLI ``schedule=`` knob.

    ``schedule`` may be ``None`` (no-op), the string ``"auto"`` (run the
    tuner), a schedule spec string (``"unroll4+stage_mem"``), or a
    :class:`~repro.isa.transforms.Schedule`.  Returns ``(program, spec,
    tuner_trials)`` where ``spec`` names what was applied ("baseline"
    when nothing changed).
    """
    if schedule is None:
        return program, "", 0
    if isinstance(schedule, str) and schedule == "auto":
        tuned = tune_program(program, bindings, verifier=verifier)
        return tuned.program, tuned.spec, tuned.trials
    if isinstance(schedule, str):
        schedule = parse_schedule(schedule)
    if not isinstance(schedule, Schedule):
        raise ScheduleError(
            f"schedule must be None, 'auto', a spec string or a Schedule, "
            f"got {schedule!r}")
    out = apply_schedule(program, schedule, bindings)
    return out, schedule.describe(), 0
