"""Functional semantics: execute one instruction against an ExecContext.

This module is *backend neutral*: the GMA device model drives it with a
timing-aware context, the CEH proxy handler drives it with an IA32 context
(``supports_double = True``) to emulate faulting instructions, and the
debugger drives it to single-step.

Double-precision policy (paper section 3.3): the GMA X3000 has no
double-precision vector hardware, so any ``.df`` arithmetic executed on an
exo-sequencer context (``supports_double = False``) raises
:class:`~repro.errors.UnsupportedOperationFault`, which the exoskeleton
turns into a CEH proxy request.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import (
    DivideByZeroFault,
    ExecutionFault,
    FpOverflowFault,
    UnsupportedOperationFault,
)
from . import predecode
from .instructions import Effect, Instruction
from .opcodes import Condition, Opcode
from .operands import (
    BlockOperand,
    MemOperand,
    Operand,
    PredOperand,
    RangeOperand,
    RegOperand,
    ShredRegOperand,
)
from .program import Program
from .types import DataType, VLEN

#: Kept as an alias for older callers; the canonical set lives in
#: :mod:`repro.isa.predecode` so both engines share one definition.
_DF_CAPABLE_OPS = predecode.DF_CAPABLE_OPS


def execute(program: Program, ip: int, ctx) -> Effect:
    """Execute ``program.instructions[ip]`` on ``ctx`` and report effects.

    Raises :class:`~repro.errors.ExecutionFault` subclasses for
    architectural faults (these trigger CEH) and lets memory-translation
    events (:class:`~repro.errors.TlbMiss`) propagate for ATR.

    Dispatch goes through the program predecode cache: guard/df
    classification, branch targets, operand readers and the opcode handler
    are resolved once per program, not once per executed instruction.
    """
    pre = predecode.lookup(program).instrs[ip]
    instr = pre.instr
    effect = Effect()
    n = instr.width
    mask = _guard_mask(instr, ctx, n) if pre.guarded else None

    if pre.df_faults and not getattr(ctx, "supports_double", False):
        raise UnsupportedOperationFault(
            f"double-precision {instr.opcode.value} is not supported by "
            f"this sequencer", instruction=instr)

    handler = pre.handler
    if handler is None:
        handler = _HANDLERS.get(instr.opcode, _h_alu)
        pre.handler = handler
    handler(program, pre, instr, ctx, effect, n, mask)
    return effect


# ---------------------------------------------------------------------------
# opcode handlers (uniform signature, bound into the predecode entry)
# ---------------------------------------------------------------------------


def _h_end(program, pre, instr, ctx, effect, n, mask):
    effect.ended = True


def _h_nop(program, pre, instr, ctx, effect, n, mask):
    pass


def _h_flush(program, pre, instr, ctx, effect, n, mask):
    ctx.flush_device_cache()
    effect.flushed_cache = True


def _branch_target(program, pre, instr) -> int:
    if pre.target is not None:
        return pre.target
    # unresolved at predecode: reproduce the original lookup (and its
    # AssemblyError / IndexError on malformed branches)
    return program.target(instr.srcs[-1].name)


def _h_jmp(program, pre, instr, ctx, effect, n, mask):
    taken = True
    if instr.pred is not None:  # guarded jump: any-lane semantics
        taken = ctx.regs.pred_any(instr.pred.index)
        if instr.pred.negate:
            taken = not taken
    if taken:
        effect.next_ip = _branch_target(program, pre, instr)


def _h_br(program, pre, instr, ctx, effect, n, mask):
    guard = instr.pred
    taken = ctx.regs.pred_any(guard.index)
    if guard.negate:
        taken = not taken
    if taken:
        effect.next_ip = _branch_target(program, pre, instr)


def _h_ld(program, pre, instr, ctx, effect, n, mask):
    _do_load(instr, ctx, effect, mask)


def _h_st(program, pre, instr, ctx, effect, n, mask):
    _do_store(instr, ctx, effect, mask)


def _h_ldblk(program, pre, instr, ctx, effect, n, mask):
    _do_load_block(instr, ctx, effect)


def _h_stblk(program, pre, instr, ctx, effect, n, mask):
    _do_store_block(instr, ctx, effect)


def _h_sample(program, pre, instr, ctx, effect, n, mask):
    _do_sample(instr, ctx, effect)


def _h_cmp(program, pre, instr, ctx, effect, n, mask):
    _do_cmp(instr, ctx, n)


def _h_sel(program, pre, instr, ctx, effect, n, mask):
    _do_sel(instr, ctx, n, mask)


def _h_ilv(program, pre, instr, ctx, effect, n, mask):
    _do_ilv(instr, ctx, n, mask)


def _h_sendreg(program, pre, instr, ctx, effect, n, mask):
    _do_sendreg(instr, ctx, effect, n)


def _h_spawn(program, pre, instr, ctx, effect, n, mask):
    arg = float(instr.srcs[0].read(ctx, 1)[0])
    ctx.spawn_shred(arg)
    effect.spawned.append(arg)


def _h_alu(program, pre, instr, ctx, effect, n, mask):
    _do_alu(instr, ctx, n, mask, pre)


_HANDLERS = {
    Opcode.END: _h_end,
    Opcode.NOP: _h_nop,
    Opcode.FENCE: _h_nop,
    Opcode.FLUSH: _h_flush,
    Opcode.JMP: _h_jmp,
    Opcode.BR: _h_br,
    Opcode.LD: _h_ld,
    Opcode.ST: _h_st,
    Opcode.LDBLK: _h_ldblk,
    Opcode.STBLK: _h_stblk,
    Opcode.SAMPLE: _h_sample,
    Opcode.CMP: _h_cmp,
    Opcode.SEL: _h_sel,
    Opcode.ILV: _h_ilv,
    Opcode.SENDREG: _h_sendreg,
    Opcode.SPAWN: _h_spawn,
}


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _guard_mask(instr: Instruction, ctx, n: int) -> Optional[np.ndarray]:
    if instr.pred is None or instr.opcode is Opcode.BR:
        return None
    width = min(n, VLEN)
    mask = ctx.regs.read_pred(instr.pred.index, width)
    if instr.pred.negate:
        mask = ~mask
    if n > width:  # ranges wider than a predicate repeat the pattern
        reps = -(-n // width)
        mask = np.tile(mask, reps)[:n]
    return mask


def _write_masked(dst: Operand, ctx, values: np.ndarray,
                  mask: Optional[np.ndarray], ty: DataType, n: int) -> None:
    if mask is not None:
        old = dst.read(ctx, n)
        values = np.where(mask, values, old)
    dst.write(ctx, values, ty)


def _do_load(instr: Instruction, ctx, effect: Effect,
             mask: Optional[np.ndarray]) -> None:
    mem = instr.srcs[0]
    if not isinstance(mem, MemOperand):
        raise ExecutionFault("ld source must be a memory operand", instr)
    index = mem.element_index(ctx)
    values = ctx.surface_read(mem.surface, index, instr.width, instr.dtype)
    _write_masked(instr.dsts[0], ctx, values, mask, instr.dtype, instr.width)
    effect.bytes_read += _read_charge(ctx, instr.width * instr.dtype.size)


def _do_store(instr: Instruction, ctx, effect: Effect,
              mask: Optional[np.ndarray]) -> None:
    mem, src = instr.srcs
    if not isinstance(mem, MemOperand):
        raise ExecutionFault("st target must be a memory operand", instr)
    index = mem.element_index(ctx)
    values = instr.dtype.wrap(src.read(ctx, instr.width))
    if mask is not None:
        old = ctx.surface_read(mem.surface, index, instr.width, instr.dtype)
        values = np.where(mask, values, old)
        effect.bytes_read += _read_charge(ctx, instr.width * instr.dtype.size)
    ctx.surface_write(mem.surface, index, values, instr.dtype)
    effect.bytes_written += _write_charge(ctx, instr.width * instr.dtype.size)


def _do_load_block(instr: Instruction, ctx, effect: Effect) -> None:
    blk = instr.srcs[0]
    if not isinstance(blk, BlockOperand) or instr.block is None:
        raise ExecutionFault("ldblk needs (surface, x, y) and WxH shape", instr)
    x, y = blk.coords(ctx)
    w, h = instr.block
    values = ctx.surface_read_block(blk.surface, x, y, w, h, instr.dtype)
    dst = instr.dsts[0]
    if isinstance(dst, RangeOperand):
        dst.write_packed(ctx, values, instr.dtype)
    elif isinstance(dst, RegOperand) and instr.width <= VLEN:
        ctx.regs.write_lanes(dst.reg, instr.dtype.wrap(values))
    else:
        raise ExecutionFault("ldblk destination must be a register range", instr)
    effect.bytes_read += _read_charge(ctx, instr.width * instr.dtype.size)


def _do_store_block(instr: Instruction, ctx, effect: Effect) -> None:
    blk, src = instr.srcs
    if not isinstance(blk, BlockOperand) or instr.block is None:
        raise ExecutionFault("stblk needs (surface, x, y) and WxH shape", instr)
    x, y = blk.coords(ctx)
    w, h = instr.block
    if isinstance(src, RangeOperand):
        values = src.read_packed(ctx, instr.width)
    elif isinstance(src, RegOperand) and instr.width <= VLEN:
        values = ctx.regs.read_lanes(src.reg, instr.width)
    else:
        raise ExecutionFault("stblk source must be a register range", instr)
    ctx.surface_write_block(blk.surface, x, y, instr.dtype.wrap(values),
                            w, h, instr.dtype)
    effect.bytes_written += _write_charge(ctx, instr.width * instr.dtype.size)


def _do_sample(instr: Instruction, ctx, effect: Effect) -> None:
    blk = instr.srcs[0]
    if not isinstance(blk, BlockOperand):
        raise ExecutionFault("sample needs a (surface, xs, ys) operand", instr)
    n = instr.width
    xs = blk.x.read(ctx, n)
    ys = blk.y.read(ctx, n)
    values = ctx.sample(blk.surface, xs, ys)
    instr.dsts[0].write(ctx, values, instr.dtype)
    effect.used_sampler = True
    # the sampler's texture cache captures the 4-neighbour overlap between
    # adjacent coordinates; net demand traffic is ~one texel per sample
    effect.bytes_read += n * instr.dtype.size


def _do_cmp(instr: Instruction, ctx, n: int) -> None:
    dst = instr.dsts[0]
    if not isinstance(dst, PredOperand):
        raise ExecutionFault("cmp destination must be a predicate register", instr)
    a = instr.dtype.wrap(instr.srcs[0].read(ctx, n))
    b = instr.dtype.wrap(instr.srcs[1].read(ctx, n))
    mask = _COMPARES[instr.cond](a, b)
    dst.write_mask(ctx, mask[:VLEN] if n > VLEN else mask)


def _do_sel(instr: Instruction, ctx, n: int, mask) -> None:
    pred, a_op, b_op = instr.srcs
    if not isinstance(pred, PredOperand):
        raise ExecutionFault("sel first source must be a predicate register", instr)
    sel_mask = pred.read_mask(ctx, min(n, VLEN))
    if n > VLEN:
        sel_mask = np.tile(sel_mask, -(-n // VLEN))[:n]
    a = a_op.read(ctx, n)
    b = b_op.read(ctx, n)
    _write_masked(instr.dsts[0], ctx, np.where(sel_mask, a, b), mask,
                  instr.dtype, n)


def _do_ilv(instr: Instruction, ctx, n: int, mask) -> None:
    if n % 2:
        raise ExecutionFault("ilv width must be even", instr)
    half = n // 2
    a = instr.srcs[0].read(ctx, half)
    b = instr.srcs[1].read(ctx, half)
    out = np.empty(n, dtype=np.float64)
    out[0::2] = a
    out[1::2] = b
    _write_masked(instr.dsts[0], ctx, out, mask, instr.dtype, n)


def _do_sendreg(instr: Instruction, ctx, effect: Effect, n: int) -> None:
    target, src = instr.srcs
    if not isinstance(target, ShredRegOperand):
        raise ExecutionFault("sendreg target must be (shred, vrN)", instr)
    shred_id = int(target.target.read(ctx, 1)[0])
    values = instr.dtype.wrap(src.read(ctx, n))
    ctx.send_register(shred_id, target.reg, values)
    effect.sent_registers.append((shred_id, target.reg))


def _do_alu(instr: Instruction, ctx, n: int, mask, pre=None) -> None:
    ty = instr.dtype
    readers = pre.src_readers if pre is not None \
        else tuple(src.read for src in instr.srcs)
    srcs = [read(ctx, n) for read in readers]
    with np.errstate(over="ignore", invalid="ignore"):
        result = _alu_compute(instr, srcs, ty)
    if ty is DataType.F:
        # overflow is detected at single-precision writeback width
        with np.errstate(over="ignore", invalid="ignore"):
            narrowed = ty.wrap_unguarded(result)
            srcs_finite = all(
                np.isfinite(ty.wrap_unguarded(s)).all() for s in srcs)
        if np.isinf(narrowed).any() and srcs_finite:
            if not getattr(ctx, "supports_double", False):
                raise FpOverflowFault(
                    f"float overflow in {instr.opcode.value}",
                    instruction=instr,
                    lane=int(np.flatnonzero(np.isinf(narrowed))[0]))
    if instr.opcode in (Opcode.HADD, Opcode.HMAX):
        instr.dsts[0].write(ctx, result, ty)  # scalar reductions ignore mask
    else:
        _write_masked(instr.dsts[0], ctx, result, mask, ty, n)


def _alu_compute(instr: Instruction, srcs, ty: DataType) -> np.ndarray:
    op = instr.opcode
    wrapped = [ty.wrap_unguarded(s) for s in srcs]
    if op in (Opcode.MOV, Opcode.CVT):
        return wrapped[0]
    if op is Opcode.IOTA:
        return np.arange(instr.width, dtype=np.float64)
    if op is Opcode.BCAST:
        return np.full(instr.width, wrapped[0].flat[0], dtype=np.float64)
    if op is Opcode.ADD:
        return wrapped[0] + wrapped[1]
    if op is Opcode.SUB:
        return wrapped[0] - wrapped[1]
    if op is Opcode.MUL:
        return wrapped[0] * wrapped[1]
    if op is Opcode.MAD:
        return wrapped[0] * wrapped[1] + wrapped[2]
    if op is Opcode.DIV:
        divisor = wrapped[1]
        if np.any(divisor == 0):
            raise DivideByZeroFault(
                "divide by zero", instruction=instr,
                lane=int(np.flatnonzero(divisor == 0)[0]))
        result = wrapped[0] / divisor
        return result if ty.is_float else np.trunc(result)
    if op is Opcode.MIN:
        return np.minimum(wrapped[0], wrapped[1])
    if op is Opcode.MAX:
        return np.maximum(wrapped[0], wrapped[1])
    if op is Opcode.AVG:
        if ty.is_float:
            return (wrapped[0] + wrapped[1]) / 2.0
        return np.floor((wrapped[0] + wrapped[1] + 1) / 2.0)
    if op is Opcode.ABS:
        return np.abs(wrapped[0])
    if op is Opcode.SHL:
        return _as_int(wrapped[0]) * (2.0 ** _as_int(wrapped[1]))
    if op is Opcode.SHR:
        return np.floor(_as_int(wrapped[0]) / (2.0 ** _as_int(wrapped[1])))
    if op is Opcode.AND:
        return _bitwise(np.bitwise_and, wrapped[0], wrapped[1])
    if op is Opcode.OR:
        return _bitwise(np.bitwise_or, wrapped[0], wrapped[1])
    if op is Opcode.XOR:
        return _bitwise(np.bitwise_xor, wrapped[0], wrapped[1])
    if op is Opcode.NOT:
        return _bitwise(np.bitwise_xor, wrapped[0],
                        np.full_like(wrapped[0], (1 << (ty.size * 8)) - 1))
    if op is Opcode.HADD:
        return np.array([wrapped[0].sum()], dtype=np.float64)
    if op is Opcode.HMAX:
        return np.array([wrapped[0].max()], dtype=np.float64)
    raise ExecutionFault(f"unimplemented opcode {op.value}", instruction=instr)


def execute_alu_batched(instr: Instruction, srcs, ty: DataType,
                        rows: int) -> np.ndarray:
    """Compute one ALU instruction over a ``(rows, width)`` batch.

    Sources are 2-D with the shred axis first; the result has the same
    layout.  Most opcodes are elementwise, so :func:`_alu_compute` already
    handles them; only the shape-sensitive ones (``iota``/``bcast`` and the
    horizontal reductions) need a batched formulation.  Faults raised here
    (divide-by-zero and the like) are *batch-level*: the gang engine treats
    them as "re-run this step per shred" so the scalar reference produces
    the architectural per-shred fault.
    """
    op = instr.opcode
    if op is Opcode.IOTA:
        return np.tile(np.arange(instr.width, dtype=np.float64), (rows, 1))
    if op is Opcode.BCAST:
        wrapped = ty.wrap_unguarded(srcs[0])
        return np.repeat(wrapped[:, :1], instr.width, axis=1)
    if op is Opcode.HADD:
        return ty.wrap_unguarded(srcs[0]).sum(axis=1, keepdims=True)
    if op is Opcode.HMAX:
        return ty.wrap_unguarded(srcs[0]).max(axis=1, keepdims=True)
    return _alu_compute(instr, srcs, ty)


def _as_int(values: np.ndarray) -> np.ndarray:
    return np.trunc(values)


def _bitwise(fn, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return fn(a.astype(np.int64), b.astype(np.int64)).astype(np.float64)


def _read_charge(ctx, fallback: int) -> int:
    """Demand read traffic: the context's cache-aware charge if it keeps
    one (the GMA device model does), else the raw access size."""
    pop = getattr(ctx, "pop_read_charge", None)
    return pop() if pop is not None else fallback


def _write_charge(ctx, fallback: int) -> int:
    pop = getattr(ctx, "pop_write_charge", None)
    return pop() if pop is not None else fallback


_COMPARES = {
    Condition.EQ: lambda a, b: a == b,
    Condition.NE: lambda a, b: a != b,
    Condition.LT: lambda a, b: a < b,
    Condition.LE: lambda a, b: a <= b,
    Condition.GT: lambda a, b: a > b,
    Condition.GE: lambda a, b: a >= b,
}
