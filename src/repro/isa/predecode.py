"""Program predecode cache: per-Program static decode, memoized by identity.

Interpreting one instruction costs far more in operand re-decoding than in
the arithmetic itself: every ``semantics.execute`` call re-inspects the
guard, re-resolves the branch label and re-dispatches the opcode through a
long if/elif chain.  All of that is *static* per instruction, so this
module computes it once per :class:`~repro.isa.program.Program` and caches
the result keyed by program identity:

* ``src_readers`` — bound operand read methods, so the ALU path skips the
  per-step attribute lookups;
* ``target`` — the resolved branch destination (instruction index);
* ``guarded`` / ``df_faults`` — the two per-step predicates of
  ``execute`` hoisted to decode time;
* ``handler`` — a slot the scalar interpreter fills with its opcode
  dispatch entry on first execution;
* ``batch_class`` — how the gang engine (:mod:`repro.gma.gang`) may treat
  the instruction: natively vectorized across the shred axis, executed
  per shred while the gang stays resident, or a full peel-off to the
  scalar interpreter.

Entries are evicted when the program is garbage collected (a weak
reference guards against CPython id reuse), and the global cache keeps
hit/miss counters that the runtime surfaces in ``RuntimeStats`` and the
Chrome trace.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from .opcodes import Opcode
from .operands import (
    BlockOperand,
    ImmOperand,
    LabelOperand,
    MemOperand,
    PredOperand,
    RangeOperand,
    RegOperand,
    SymOperand,
)
from .program import Program
from .types import DataType, NUM_PREGS, NUM_VREGS, VLEN

#: How the gang engine treats one instruction.
BATCH_CONTROL = "control"      # END/NOP/FENCE/JMP/BR: handled natively
BATCH_ALU = "alu"              # one numpy op across the whole shred axis
BATCH_MEM = "batch_mem"        # lockstep batched translate + gather/scatter
BATCH_PER_SHRED = "per_shred"  # scalar semantics per shred, gang resident
BATCH_PEEL = "peel_all"        # peel every shred to the scalar interpreter

#: Opcodes that never touch the FP datapath, so ``.df`` is legal on the
#: exo-sequencers (paper section 3.3); everything else proxies via CEH.
DF_CAPABLE_OPS = {
    Opcode.MOV, Opcode.BCAST, Opcode.LD, Opcode.ST, Opcode.LDBLK,
    Opcode.STBLK, Opcode.JMP, Opcode.BR, Opcode.END, Opcode.NOP,
    Opcode.SENDREG, Opcode.SPAWN, Opcode.FLUSH, Opcode.FENCE, Opcode.SEL,
    Opcode.ILV, Opcode.IOTA,
}

_CONTROL_OPS = {Opcode.END, Opcode.NOP, Opcode.FENCE, Opcode.JMP, Opcode.BR}
_MEMORY_OPS = {Opcode.LD, Opcode.ST, Opcode.LDBLK, Opcode.STBLK,
               Opcode.SAMPLE}
#: Instructions whose *cross-shred ordering* is architecturally visible:
#: the gang abandons lockstep entirely and peels every shred, so the
#: scalar interpreter's queue-order semantics apply.
_PEEL_OPS = {Opcode.SPAWN, Opcode.SENDREG, Opcode.FLUSH}


@dataclass
class PredecodedInstr:
    """Static decode of one instruction (shared by scalar and gang)."""

    instr: object
    opcode: Opcode
    guarded: bool            # pred present and consumed as a lane mask
    df_faults: bool          # .df arithmetic: faults on exo-sequencers
    batch_class: str
    target: Optional[int] = None  # resolved branch destination
    src_readers: Tuple[Callable, ...] = ()
    handler: Optional[Callable] = None  # filled lazily by semantics
    #: For a divergable branch (``br``/guarded ``jmp``): the immediate
    #: post-dominator ip where both arms rejoin, or None when the arms
    #: never provably reconverge (e.g. a branch into a malformed region).
    reconv: Optional[int] = None
    #: True when the whole divergent region between this branch and
    #: ``reconv`` is free of ordered side effects (no ``BATCH_PEEL``
    #: instruction), so the gang engine may park the minority as a
    #: suspended sub-gang and re-admit it at ``reconv`` instead of
    #: peeling it to the scalar interpreter.
    repackable: bool = False


@dataclass
class PredecodedProgram:
    """Every instruction's predecode, plus gang eligibility."""

    instrs: Tuple[PredecodedInstr, ...]
    gangable: bool
    reason: str = ""  # why not gangable (empty when it is)


def _vector_readable(operand, n: int) -> bool:
    """Can the gang read this operand with one batched numpy expression,
    with semantics identical to ``operand.read(ctx, n)``?"""
    if isinstance(operand, RegOperand):
        return 0 <= operand.reg < NUM_VREGS and n <= VLEN
    if isinstance(operand, RangeOperand):
        if not (0 <= operand.start <= operand.stop < NUM_VREGS):
            return False
        return operand.count == n or operand.count == -(-n // VLEN)
    if isinstance(operand, (ImmOperand, SymOperand)):
        return True
    if isinstance(operand, PredOperand):
        return 0 <= operand.index < NUM_PREGS and n <= VLEN
    return False


def _vector_writable(operand, n: int) -> bool:
    if isinstance(operand, RegOperand):
        return 0 <= operand.reg < NUM_VREGS and n <= VLEN
    if isinstance(operand, RangeOperand):
        if not (0 <= operand.start <= operand.stop < NUM_VREGS):
            return False
        return operand.count == n or operand.count == -(-n // VLEN)
    return False


def _alu_batchable(instr) -> bool:
    """True when the gang can apply this ALU-class instruction to every
    active shred in one vectorized step.  Anything structurally odd (bad
    register bounds, unusual operand kinds, widths the scalar path would
    fault on) answers False so the scalar reference raises the identical
    error per shred instead."""
    op = instr.opcode
    n = instr.width
    if instr.pred is not None and not 0 <= instr.pred.index < NUM_PREGS:
        return False
    if op is Opcode.CMP:
        return (len(instr.dsts) == 1
                and isinstance(instr.dsts[0], PredOperand)
                and 0 <= instr.dsts[0].index < NUM_PREGS
                and len(instr.srcs) >= 2
                and all(_vector_readable(s, n) for s in instr.srcs[:2]))
    if op is Opcode.SEL:
        return (len(instr.srcs) == 3
                and isinstance(instr.srcs[0], PredOperand)
                and 0 <= instr.srcs[0].index < NUM_PREGS
                and all(_vector_readable(s, n) for s in instr.srcs[1:])
                and len(instr.dsts) == 1
                and _vector_writable(instr.dsts[0], n))
    if op in (Opcode.HADD, Opcode.HMAX):
        return (len(instr.srcs) == 1 and _vector_readable(instr.srcs[0], n)
                and len(instr.dsts) == 1
                and isinstance(instr.dsts[0], RegOperand)
                and 0 <= instr.dsts[0].reg < NUM_VREGS)
    if op is Opcode.ILV:
        if n % 2:
            return False  # scalar raises "ilv width must be even"
        src_n = n // 2
    else:
        src_n = n
    if not all(_vector_readable(s, src_n) for s in instr.srcs):
        return False
    return len(instr.dsts) == 1 and _vector_writable(instr.dsts[0], n)


def _mem_batchable(instr) -> bool:
    """True when the gang can run this memory instruction as one lockstep
    step: batched address computation on the shred axis, one vectorized
    translation, one gather/scatter.  Anything structurally odd answers
    False so the per-shred reference path raises the identical fault."""
    op = instr.opcode
    n = instr.width
    if instr.pred is not None and not 0 <= instr.pred.index < NUM_PREGS:
        return False
    if instr.dtype is DataType.DF and op not in DF_CAPABLE_OPS:
        # sample.df faults into CEH; the reference path must raise it
        return False
    if op is Opcode.LD:
        return (len(instr.srcs) == 1
                and isinstance(instr.srcs[0], MemOperand)
                and _vector_readable(instr.srcs[0].index, 1)
                and len(instr.dsts) == 1
                and _vector_writable(instr.dsts[0], n))
    if op is Opcode.ST:
        return (len(instr.srcs) == 2
                and isinstance(instr.srcs[0], MemOperand)
                and _vector_readable(instr.srcs[0].index, 1)
                and _vector_readable(instr.srcs[1], n))
    if op in (Opcode.LDBLK, Opcode.STBLK):
        if instr.block is None:
            return False
        w, h = instr.block
        if w * h != n:
            return False
        blk = instr.srcs[0]
        if not (isinstance(blk, BlockOperand)
                and _vector_readable(blk.x, 1)
                and _vector_readable(blk.y, 1)):
            return False
        reg_side = instr.dsts[0] if op is Opcode.LDBLK else instr.srcs[1]
        if not (op is Opcode.LDBLK and len(instr.dsts) == 1
                or op is Opcode.STBLK and len(instr.srcs) == 2):
            return False
        if isinstance(reg_side, RangeOperand):
            # read_packed/write_packed address start..start+ceil(n/16)-1
            # regardless of the declared stop
            nregs = -(-n // VLEN)
            return (0 <= reg_side.start <= reg_side.stop < NUM_VREGS
                    and reg_side.start + nregs - 1 < NUM_VREGS)
        if isinstance(reg_side, RegOperand):
            return n <= VLEN and 0 <= reg_side.reg < NUM_VREGS
        return False
    if op is Opcode.SAMPLE:
        return (len(instr.srcs) >= 1
                and isinstance(instr.srcs[0], BlockOperand)
                and _vector_readable(instr.srcs[0].x, n)
                and _vector_readable(instr.srcs[0].y, n)
                and len(instr.dsts) == 1
                and _vector_writable(instr.dsts[0], n))
    return False


def _classify(instr, labels: Dict[str, int]) -> str:
    op = instr.opcode
    if op in _PEEL_OPS:
        return BATCH_PEEL
    if op in (Opcode.JMP, Opcode.BR):
        if op is Opcode.BR and instr.pred is None:
            return BATCH_PEEL  # malformed; scalar path reports it
        if instr.pred is not None and not 0 <= instr.pred.index < NUM_PREGS:
            return BATCH_PEEL
        target = instr.srcs[-1] if instr.srcs else None
        if not isinstance(target, LabelOperand) or target.name not in labels:
            return BATCH_PEEL
        return BATCH_CONTROL
    if op in _CONTROL_OPS:
        return BATCH_CONTROL
    if op in _MEMORY_OPS:
        # surface traffic stays ganged when the whole step batches:
        # vectorized translate + one gather/scatter, with deferred line
        # charging replayed in queue order; otherwise scalar per shred
        return BATCH_MEM if _mem_batchable(instr) else BATCH_PER_SHRED
    if instr.dtype is DataType.DF and op not in DF_CAPABLE_OPS:
        # raises UnsupportedOperationFault -> CEH; scalar path per shred
        return BATCH_PER_SHRED
    if not _alu_batchable(instr):
        return BATCH_PER_SHRED
    return BATCH_ALU


def predecode_program(program: Program) -> PredecodedProgram:
    """Compute the full static decode for one program (uncached)."""
    instrs = []
    gangable = True
    reason = ""
    for instr in program.instructions:
        op = instr.opcode
        target = None
        if op in (Opcode.JMP, Opcode.BR) and instr.srcs:
            last = instr.srcs[-1]
            if isinstance(last, LabelOperand):
                target = program.labels.get(last.name)
        instrs.append(PredecodedInstr(
            instr=instr,
            opcode=op,
            guarded=instr.pred is not None and op is not Opcode.BR,
            df_faults=(instr.dtype is DataType.DF
                       and op not in DF_CAPABLE_OPS),
            batch_class=_classify(instr, program.labels),
            target=target,
            src_readers=tuple(s.read for s in instr.srcs),
        ))
        if gangable and op in _PEEL_OPS and op is not Opcode.SPAWN:
            # sendreg couples shreds (producer must complete before the
            # consumer launches); flush counts depend on shred order.
            # spawn merely peels, so it does not poison the whole program.
            gangable = False
            reason = f"{op.value} requires scalar queue-order execution"
    pre_prog = PredecodedProgram(instrs=tuple(instrs), gangable=gangable,
                                 reason=reason)
    if gangable:
        # deferred import: blocks imports this module at top level
        from .blocks import annotate_reconvergence
        annotate_reconvergence(pre_prog)
    return pre_prog


class PredecodeCache:
    """Predecode results keyed by program identity.

    A weak reference with an eviction callback guards against CPython
    recycling object ids: a dead program's entry disappears before a new
    program can alias its id, and a same-id survivor is verified against
    the stored reference on every lookup.

    The process-wide instance is shared by every engine, including the
    parallel fabric drain's worker threads, so entry and counter updates
    are guarded by a lock.  It is an ``RLock`` because the eviction
    callback fires from garbage collection, which can trigger on an
    allocation made while this same thread already holds the lock.
    """

    def __init__(self):
        self._entries: Dict[int, tuple] = {}
        #: Fused-block programs (:mod:`repro.gma.fusion`), keyed like
        #: ``_entries`` and evicted with them: a fused entry must never
        #: outlive — or alias across id reuse — its predecode entry.
        self._fused: Dict[int, object] = {}
        #: Megaop promotion state (:mod:`repro.gma.megaop`), keyed and
        #: evicted exactly like ``_fused``: compiled megaops reference
        #: the program's fused blocks, so they must share its lifetime.
        self._megaops: Dict[int, object] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, program: Program) -> PredecodedProgram:
        key = id(program)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                ref, pre = entry
                if ref() is program:
                    self.hits += 1
                    return pre
                self._entries.pop(key, None)  # stale id reuse
                self._fused.pop(key, None)
                self._megaops.pop(key, None)
            self.misses += 1
        # decode outside the lock: it is pure and per program, so a
        # concurrent duplicate decode is cheaper than serializing all of
        # them behind one entry's work
        pre = predecode_program(program)

        def _evict(_ref, cache=self, key=key):
            with cache._lock:
                cache._fused.pop(key, None)
                cache._megaops.pop(key, None)
                if cache._entries.pop(key, None) is not None:
                    cache.evictions += 1

        with self._lock:
            self._entries[key] = (weakref.ref(program, _evict), pre)
        return pre

    def lookup_fused(self, program: Program):
        """The fused-block entry stored for this program, or None."""
        key = id(program)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0]() is program:
                return self._fused.get(key)
        return None

    def store_fused(self, program: Program, fused) -> None:
        """Attach a fused-block entry alongside the predecode entry.

        Stored only while the program's predecode entry is live and
        verified — the weakref eviction and stale-id checks then cover
        both, so fused blocks can never leak across id reuse.
        """
        key = id(program)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0]() is program:
                self._fused[key] = fused

    def lookup_megaops(self, program: Program):
        """The megaop promotion state stored for this program, or None."""
        key = id(program)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0]() is program:
                return self._megaops.get(key)
        return None

    def store_megaops(self, program: Program, megaops) -> None:
        """Attach megaop promotion state alongside the predecode entry,
        under the same liveness verification as :meth:`store_fused`."""
        key = id(program)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0]() is program:
                self._megaops[key] = megaops

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._fused.clear()
            self._megaops.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, int]:
        """A snapshot of the cache's health counters."""
        with self._lock:
            fused_blocks = sum(len(fused.blocks)
                               for fused in self._fused.values())
            megaops = sum(len(mega.ops)
                          for mega in self._megaops.values())
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "fused_blocks": fused_blocks,
                "megaops": megaops,
            }


#: The process-wide cache used by both the scalar and gang engines.
CACHE = PredecodeCache()


def lookup(program: Program) -> PredecodedProgram:
    return CACHE.lookup(program)
