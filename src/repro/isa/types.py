"""Data types and architectural constants of the accelerator ISA.

The GMA X3000 ISA is not publicly documented at instruction level, so we
define the minimal type system that makes the paper's listings well formed
(see DESIGN.md, "ISA semantics").  Element types follow the suffixes used
in Figure 6 of the paper (``.w``, ``.dw``) extended with the byte and
floating types the media kernels need.
"""

from __future__ import annotations

import enum

import numpy as np

#: Magnitude bound under which a truncated float64 converts to int64
#: exactly (comfortably inside both ranges); larger, inf or nan lane
#: values take the arbitrary-precision object-dtype wrap path.
_INT64_EXACT = float(2 ** 62)

#: Number of architectural vector registers per exo-sequencer.  The paper
#: reports "a large register file of 64 to 128 vector registers" (section 5).
NUM_VREGS = 128

#: Lanes per vector register.  Each exo-sequencer "supports wide SIMD
#: operations on up to 16 data elements in parallel" (section 3.4).
VLEN = 16

#: Number of predicate registers (the ISA "features ... predication
#: support", section 5).
NUM_PREGS = 16

#: Bytes per vector-register lane (32-bit lanes).
LANE_BYTES = 4


class DataType(enum.Enum):
    """Element types, named by their assembly suffix."""

    B = "b"  # signed byte
    UB = "ub"  # unsigned byte
    W = "w"  # signed 16-bit word
    UW = "uw"  # unsigned 16-bit word
    DW = "dw"  # signed 32-bit dword
    UDW = "udw"  # unsigned 32-bit dword
    F = "f"  # IEEE single
    DF = "df"  # IEEE double -- unsupported in X3000 hardware, trips CEH

    @property
    def size(self) -> int:
        """Size of one element in bytes (as stored in memory)."""
        return _SIZES[self]

    @property
    def is_float(self) -> bool:
        return self in (DataType.F, DataType.DF)

    @property
    def is_signed(self) -> bool:
        return self in (DataType.B, DataType.W, DataType.DW, DataType.F, DataType.DF)

    @property
    def np_dtype(self) -> np.dtype:
        """The numpy dtype used for this element type in memory."""
        return _NP_DTYPES[self]

    @classmethod
    def from_suffix(cls, suffix: str) -> "DataType":
        try:
            return _BY_SUFFIX[suffix]
        except KeyError:
            raise ValueError(f"unknown data type suffix {suffix!r}") from None

    def wrap(self, values: np.ndarray) -> np.ndarray:
        """Apply this type's range semantics to raw float64 lane values.

        Integer types wrap modulo their width (two's complement for signed
        types); float types pass through (``f`` rounds to float32
        precision).  Lane storage is always float64; this models the
        narrowing that happens when an ALU of the given type writes back.
        """
        if self is DataType.F:
            # the float32 cast warns on finite overflow; suppress here so
            # callers outside an errstate block stay silent
            with np.errstate(over="ignore", invalid="ignore"):
                return self.wrap_unguarded(values)
        return self.wrap_unguarded(values)

    def wrap_unguarded(self, values: np.ndarray) -> np.ndarray:
        """:meth:`wrap` without the FP-warning guard.

        Callers already inside ``np.errstate(over="ignore",
        invalid="ignore")`` (the ALU hot paths) use this to skip the
        per-call errstate enter/exit; results are identical.
        """
        if type(values) is not np.ndarray or values.dtype != np.float64:
            values = np.asarray(values, dtype=np.float64)
        if self is DataType.F:
            return values.astype(np.float32).astype(np.float64)
        if self is DataType.DF:
            return values
        bits = self.size * 8
        modulus = 1 << bits
        trunced = np.trunc(values)
        if np.all(np.abs(trunced) < _INT64_EXACT):
            # finite values exactly representable as int64: native modular
            # arithmetic (numpy's % matches Python's sign convention, and
            # every possible remainder < 2**32 round-trips float64 exactly)
            ints = (trunced.astype(np.int64) % modulus).astype(np.float64)
        else:
            # huge, inf or nan lanes: the exact (slow) object-dtype path
            ints = np.asarray(np.asarray(trunced, dtype=object) % modulus,
                              dtype=np.float64)
        if self.is_signed:
            half = modulus // 2
            ints = np.where(ints >= half, ints - modulus, ints)
        return ints


_SIZES = {
    DataType.B: 1,
    DataType.UB: 1,
    DataType.W: 2,
    DataType.UW: 2,
    DataType.DW: 4,
    DataType.UDW: 4,
    DataType.F: 4,
    DataType.DF: 8,
}

_NP_DTYPES = {
    DataType.B: np.dtype(np.int8),
    DataType.UB: np.dtype(np.uint8),
    DataType.W: np.dtype(np.int16),
    DataType.UW: np.dtype(np.uint16),
    DataType.DW: np.dtype(np.int32),
    DataType.UDW: np.dtype(np.uint32),
    DataType.F: np.dtype(np.float32),
    DataType.DF: np.dtype(np.float64),
}

_BY_SUFFIX = {t.value: t for t in DataType}
