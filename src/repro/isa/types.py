"""Data types and architectural constants of the accelerator ISA.

The GMA X3000 ISA is not publicly documented at instruction level, so we
define the minimal type system that makes the paper's listings well formed
(see DESIGN.md, "ISA semantics").  Element types follow the suffixes used
in Figure 6 of the paper (``.w``, ``.dw``) extended with the byte and
floating types the media kernels need.
"""

from __future__ import annotations

import enum

import numpy as np

#: Number of architectural vector registers per exo-sequencer.  The paper
#: reports "a large register file of 64 to 128 vector registers" (section 5).
NUM_VREGS = 128

#: Lanes per vector register.  Each exo-sequencer "supports wide SIMD
#: operations on up to 16 data elements in parallel" (section 3.4).
VLEN = 16

#: Number of predicate registers (the ISA "features ... predication
#: support", section 5).
NUM_PREGS = 16

#: Bytes per vector-register lane (32-bit lanes).
LANE_BYTES = 4


class DataType(enum.Enum):
    """Element types, named by their assembly suffix."""

    B = "b"  # signed byte
    UB = "ub"  # unsigned byte
    W = "w"  # signed 16-bit word
    UW = "uw"  # unsigned 16-bit word
    DW = "dw"  # signed 32-bit dword
    UDW = "udw"  # unsigned 32-bit dword
    F = "f"  # IEEE single
    DF = "df"  # IEEE double -- unsupported in X3000 hardware, trips CEH

    @property
    def size(self) -> int:
        """Size of one element in bytes (as stored in memory)."""
        return _SIZES[self]

    @property
    def is_float(self) -> bool:
        return self in (DataType.F, DataType.DF)

    @property
    def is_signed(self) -> bool:
        return self in (DataType.B, DataType.W, DataType.DW, DataType.F, DataType.DF)

    @property
    def np_dtype(self) -> np.dtype:
        """The numpy dtype used for this element type in memory."""
        return _NP_DTYPES[self]

    @classmethod
    def from_suffix(cls, suffix: str) -> "DataType":
        try:
            return _BY_SUFFIX[suffix]
        except KeyError:
            raise ValueError(f"unknown data type suffix {suffix!r}") from None

    def wrap(self, values: np.ndarray) -> np.ndarray:
        """Apply this type's range semantics to raw float64 lane values.

        Integer types wrap modulo their width (two's complement for signed
        types); float types pass through (``f`` rounds to float32
        precision).  Lane storage is always float64; this models the
        narrowing that happens when an ALU of the given type writes back.
        """
        values = np.asarray(values, dtype=np.float64)
        if self is DataType.F:
            with np.errstate(over="ignore", invalid="ignore"):
                return values.astype(np.float32).astype(np.float64)
        if self is DataType.DF:
            return values
        bits = self.size * 8
        modulus = 1 << bits
        ints = np.asarray(np.trunc(values), dtype=object) % modulus
        ints = np.asarray(ints, dtype=np.float64)
        if self.is_signed:
            half = modulus // 2
            ints = np.where(ints >= half, ints - modulus, ints)
        return ints


_SIZES = {
    DataType.B: 1,
    DataType.UB: 1,
    DataType.W: 2,
    DataType.UW: 2,
    DataType.DW: 4,
    DataType.UDW: 4,
    DataType.F: 4,
    DataType.DF: 8,
}

_NP_DTYPES = {
    DataType.B: np.dtype(np.int8),
    DataType.UB: np.dtype(np.uint8),
    DataType.W: np.dtype(np.int16),
    DataType.UW: np.dtype(np.uint16),
    DataType.DW: np.dtype(np.int32),
    DataType.UDW: np.dtype(np.uint32),
    DataType.F: np.dtype(np.float32),
    DataType.DF: np.dtype(np.float64),
}

_BY_SUFFIX = {t.value: t for t in DataType}
