"""Opcode set and static metadata of the accelerator ISA.

Latency classes feed the GMA timing model: ``issue`` is the cycles an
instruction occupies the EU's issue slot; ``latency`` is the additional
cycles before its result is ready (covered by switch-on-stall
multithreading when other thread contexts are runnable).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Opcode(enum.Enum):
    # data movement
    MOV = "mov"
    BCAST = "bcast"  # broadcast scalar to all elements
    LD = "ld"  # linear surface load
    ST = "st"  # linear surface store
    LDBLK = "ldblk"  # 2-D block load (macroblock)
    STBLK = "stblk"  # 2-D block store
    SAMPLE = "sample"  # fixed-function bilinear texture sampler
    # integer/float ALU
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    MAD = "mad"  # dst = a * b + c
    DIV = "div"
    MIN = "min"
    MAX = "max"
    AVG = "avg"  # rounding average, the media idiom
    ABS = "abs"
    SHL = "shl"
    SHR = "shr"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    CVT = "cvt"  # convert to the instruction's data type
    IOTA = "iota"  # dst lane i = i (the per-lane index ramp)
    ILV = "ilv"  # interleave: dst[2i] = a[i], dst[2i+1] = b[i]
    HADD = "hadd"  # horizontal sum -> scalar
    HMAX = "hmax"  # horizontal max -> scalar
    # predication & control flow
    CMP = "cmp"  # writes a predicate register
    SEL = "sel"  # dst = mask ? a : b
    JMP = "jmp"
    BR = "br"  # branch if any lane of predicate set (or !p: none set)
    END = "end"
    NOP = "nop"
    # inter-shred / system
    SENDREG = "sendreg"  # write another shred's register (producer-consumer)
    SPAWN = "spawn"  # spawn a sibling shred
    FLUSH = "flush"  # flush this sequencer's cache (non-CC configurations)
    FENCE = "fence"  # memory ordering point


class OpKind(enum.Enum):
    MOVE = "move"
    MEMORY = "memory"
    ALU = "alu"
    SAMPLER = "sampler"
    PREDICATE = "predicate"
    CONTROL = "control"
    SYSTEM = "system"


@dataclass(frozen=True)
class OpInfo:
    """Static properties of one opcode."""

    kind: OpKind
    n_src: int  # number of source operands (-1: variable)
    has_dst: bool
    issue: int  # EU issue-slot occupancy in cycles
    latency: int  # additional result latency (hideable by thread switch)
    has_cond: bool = False  # carries a comparison condition (cmp)


_ALU_1 = OpInfo(OpKind.ALU, 1, True, issue=1, latency=1)
_ALU_2 = OpInfo(OpKind.ALU, 2, True, issue=1, latency=1)
_ALU_3 = OpInfo(OpKind.ALU, 3, True, issue=1, latency=1)

OP_INFO = {
    Opcode.MOV: OpInfo(OpKind.MOVE, 1, True, issue=1, latency=0),
    Opcode.BCAST: OpInfo(OpKind.MOVE, 1, True, issue=1, latency=0),
    Opcode.LD: OpInfo(OpKind.MEMORY, 1, True, issue=2, latency=40),
    Opcode.ST: OpInfo(OpKind.MEMORY, 2, False, issue=2, latency=0),
    Opcode.LDBLK: OpInfo(OpKind.MEMORY, 1, True, issue=4, latency=60),
    Opcode.STBLK: OpInfo(OpKind.MEMORY, 2, False, issue=4, latency=0),
    Opcode.SAMPLE: OpInfo(OpKind.SAMPLER, 1, True, issue=4, latency=80),
    Opcode.ADD: _ALU_2,
    Opcode.SUB: _ALU_2,
    Opcode.MUL: OpInfo(OpKind.ALU, 2, True, issue=1, latency=3),
    Opcode.MAD: OpInfo(OpKind.ALU, 3, True, issue=1, latency=3),
    Opcode.DIV: OpInfo(OpKind.ALU, 2, True, issue=4, latency=16),
    Opcode.MIN: _ALU_2,
    Opcode.MAX: _ALU_2,
    Opcode.AVG: _ALU_2,
    Opcode.ABS: _ALU_1,
    Opcode.SHL: _ALU_2,
    Opcode.SHR: _ALU_2,
    Opcode.AND: _ALU_2,
    Opcode.OR: _ALU_2,
    Opcode.XOR: _ALU_2,
    Opcode.NOT: _ALU_1,
    Opcode.CVT: _ALU_1,
    Opcode.IOTA: OpInfo(OpKind.ALU, 0, True, issue=1, latency=0),
    Opcode.ILV: _ALU_2,
    Opcode.HADD: OpInfo(OpKind.ALU, 1, True, issue=2, latency=4),
    Opcode.HMAX: OpInfo(OpKind.ALU, 1, True, issue=2, latency=4),
    Opcode.CMP: OpInfo(OpKind.PREDICATE, 2, True, issue=1, latency=1, has_cond=True),
    Opcode.SEL: OpInfo(OpKind.ALU, 3, True, issue=1, latency=1),
    Opcode.JMP: OpInfo(OpKind.CONTROL, 1, False, issue=1, latency=0),
    Opcode.BR: OpInfo(OpKind.CONTROL, 2, False, issue=1, latency=1),
    Opcode.END: OpInfo(OpKind.CONTROL, 0, False, issue=1, latency=0),
    Opcode.NOP: OpInfo(OpKind.CONTROL, 0, False, issue=1, latency=0),
    Opcode.SENDREG: OpInfo(OpKind.SYSTEM, 2, False, issue=2, latency=8),
    Opcode.SPAWN: OpInfo(OpKind.SYSTEM, 1, False, issue=4, latency=0),
    Opcode.FLUSH: OpInfo(OpKind.SYSTEM, 0, False, issue=4, latency=100),
    Opcode.FENCE: OpInfo(OpKind.SYSTEM, 0, False, issue=1, latency=4),
}


class Condition(enum.Enum):
    """Comparison conditions for ``cmp.<cond>.<n>.<ty>``."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"


_BY_MNEMONIC = {op.value: op for op in Opcode}


def opcode_from_mnemonic(name: str) -> Opcode:
    try:
        return _BY_MNEMONIC[name]
    except KeyError:
        raise ValueError(f"unknown opcode {name!r}") from None
