"""Instruction scheduling for accelerator shreds.

The exo-sequencers "fetch and retire instructions in-order" (paper
section 3.4), so a shred that issues a load right before its use stalls
for the full memory latency unless another hardware thread covers it.
When occupancy is low — few shreds, or dependent taskq chains — the
compiler can help by *list scheduling* each basic block: independent
loads hoist above earlier computation, spreading latency across useful
issue slots.

:func:`schedule_program` preserves semantics exactly (dependences are
honoured conservatively: register RAW/WAR/WAW including predicates and
the merge-read of guarded destinations, whole-surface memory ordering,
and full barriers around system instructions) and preserves every label:
blocks never move, only instructions within them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from .instructions import Instruction
from .opcodes import Opcode
from .operands import (
    BlockOperand,
    MemOperand,
    Operand,
    PredOperand,
    RangeOperand,
    RegOperand,
    ShredRegOperand,
)
from .program import Program

#: Instructions that must not move at all (scheduling barriers).
_BARRIERS = {Opcode.SENDREG, Opcode.SPAWN, Opcode.FLUSH, Opcode.FENCE}
#: Block terminators (always the last instruction of their block).
_TERMINATORS = {Opcode.JMP, Opcode.BR, Opcode.END}


@dataclass
class _Effects:
    """Register/predicate/memory footprint of one instruction."""

    reg_uses: Set[int] = field(default_factory=set)
    reg_defs: Set[int] = field(default_factory=set)
    pred_uses: Set[int] = field(default_factory=set)
    pred_defs: Set[int] = field(default_factory=set)
    mem_reads: Set[str] = field(default_factory=set)
    mem_writes: Set[str] = field(default_factory=set)
    barrier: bool = False


def _operand_regs(op: Operand) -> Set[int]:
    if isinstance(op, RegOperand):
        return {op.reg}
    if isinstance(op, RangeOperand):
        return set(range(op.start, op.stop + 1))
    if isinstance(op, MemOperand):
        return _operand_regs(op.index)
    if isinstance(op, BlockOperand):
        return _operand_regs(op.x) | _operand_regs(op.y)
    if isinstance(op, ShredRegOperand):
        return _operand_regs(op.target)
    return set()


def _effects(instr: Instruction) -> _Effects:
    eff = _Effects()
    if instr.opcode in _BARRIERS:
        eff.barrier = True
    for op in instr.srcs:
        eff.reg_uses |= _operand_regs(op)
        if isinstance(op, PredOperand):
            eff.pred_uses.add(op.index)
        if isinstance(op, MemOperand):
            eff.mem_reads.add(op.surface)
        if isinstance(op, BlockOperand):
            eff.mem_reads.add(op.surface)
    for op in instr.dsts:
        if isinstance(op, PredOperand):
            eff.pred_defs.add(op.index)
        else:
            eff.reg_defs |= _operand_regs(op)
    # stores: the "source" memory operand is really the destination
    if instr.opcode in (Opcode.ST, Opcode.STBLK):
        target = instr.srcs[0]
        surface = getattr(target, "surface", None)
        if surface is not None:
            eff.mem_reads.discard(surface)
            eff.mem_writes.add(surface)
    if instr.pred is not None:
        eff.pred_uses.add(instr.pred.index)
        # a guarded write merges with the old destination contents
        eff.reg_uses |= eff.reg_defs
        if instr.opcode in (Opcode.ST, Opcode.STBLK):
            eff.mem_reads |= eff.mem_writes
    return eff


def _depends(later: _Effects, earlier: _Effects) -> bool:
    """Must ``later`` stay after ``earlier``?"""
    if later.barrier or earlier.barrier:
        return True
    return bool(
        later.reg_uses & earlier.reg_defs  # RAW
        or later.reg_defs & earlier.reg_uses  # WAR
        or later.reg_defs & earlier.reg_defs  # WAW
        or later.pred_uses & earlier.pred_defs
        or later.pred_defs & earlier.pred_uses
        or later.pred_defs & earlier.pred_defs
        or later.mem_reads & earlier.mem_writes
        or later.mem_writes & earlier.mem_reads
        or later.mem_writes & earlier.mem_writes
    )


def _block_boundaries(program: Program) -> List[Tuple[int, int]]:
    """Half-open [start, stop) ranges of schedulable block bodies."""
    n = len(program.instructions)
    leaders = {0, n}
    for idx in sorted(program.labels.values()):
        leaders.add(idx)
    for idx, instr in enumerate(program.instructions):
        if instr.opcode in _TERMINATORS:
            leaders.add(idx + 1)
    marks = sorted(m for m in leaders if 0 <= m <= n)
    return [(a, b) for a, b in zip(marks, marks[1:]) if b > a]


def _schedule_block(instructions: Sequence[Instruction]) -> List[Instruction]:
    """Latency-weighted list scheduling of one block body."""
    body = list(instructions)
    terminator = None
    if body and body[-1].opcode in _TERMINATORS:
        terminator = body.pop()
    n = len(body)
    if n <= 1:
        return body + ([terminator] if terminator else [])

    effects = [_effects(instr) for instr in body]
    succs: Dict[int, List[int]] = {i: [] for i in range(n)}
    npreds = [0] * n
    for j in range(n):
        for i in range(j):
            if _depends(effects[j], effects[i]):
                succs[i].append(j)
                npreds[j] += 1

    # priority: latency-weighted height to the end of the block
    height = [0] * n
    for i in range(n - 1, -1, -1):
        instr = body[i]
        own = instr.info.issue + instr.info.latency
        height[i] = own + max((height[j] for j in succs[i]), default=0)

    ready = [i for i in range(n) if npreds[i] == 0]
    order: List[Instruction] = []
    while ready:
        # highest critical path first; original order breaks ties
        ready.sort(key=lambda i: (-height[i], i))
        chosen = ready.pop(0)
        order.append(body[chosen])
        for j in succs[chosen]:
            npreds[j] -= 1
            if npreds[j] == 0:
                ready.append(j)
    assert len(order) == n, "scheduling lost instructions"
    if terminator is not None:
        order.append(terminator)
    return order


def instruction_effects(instr: Instruction) -> _Effects:
    """Public view of one instruction's dependence footprint."""
    return _effects(instr)


def schedule_program(program: Program) -> Program:
    """Return a semantically equivalent program with scheduled blocks."""
    out: List[Instruction] = []
    for start, stop in _block_boundaries(program):
        out.extend(_schedule_block(program.instructions[start:stop]))
    scheduled = Program(name=program.name, instructions=tuple(out),
                        labels=dict(program.labels), source=program.source)
    scheduled.validate()
    return scheduled


def estimated_serial_cycles(program: Program) -> int:
    """Single-context cost estimate: each instruction's latency is exposed
    unless the instructions between a producer and its first consumer
    cover it.  Used to compare schedules; the EU model is the ground
    truth."""
    total = 0
    pending: Dict[int, int] = {}  # reg -> cycle its value is ready
    clock = 0
    for instr in program.instructions:
        eff = _effects(instr)
        stall = 0
        for reg in eff.reg_uses:
            if reg in pending:
                stall = max(stall, pending[reg] - clock)
        clock += stall + instr.info.issue
        for reg in eff.reg_defs:
            pending[reg] = clock + instr.info.latency
        total = clock
    return total
