"""Disassembler: turn programs back into assembly text.

The output re-assembles to an equivalent program (round-trip property,
covered by tests), which is what the debugger shows when no source text is
available for a fat-binary section.
"""

from __future__ import annotations

from .program import Program


def disassemble(program: Program) -> str:
    """Render a program as assembly text with labels restored."""
    by_index = {}
    for name, idx in program.labels.items():
        by_index.setdefault(idx, []).append(name)
    lines = []
    for idx, instr in enumerate(program.instructions):
        for name in sorted(by_index.get(idx, [])):
            lines.append(f"{name}:")
        lines.append(f"    {instr}")
    # labels pointing one past the last instruction (e.g. loop exits)
    for name in sorted(by_index.get(len(program.instructions), [])):
        lines.append(f"{name}:")
        lines.append("    nop")
    return "\n".join(lines) + "\n"
