"""Collaborative Exception Handling (paper section 3.3).

When an exo-sequencer instruction faults (double-precision vector op,
divide by zero, FP overflow), the faulting instruction "cannot simply be
replayed on the IA32 CPU sequencer" — it is not an IA32 instruction.  CEH
instead ships the fault to the IA32 sequencer, which runs an
application-level handler that *emulates* the faulting accelerator
instruction (or applies a registered structured-exception-handling policy),
updates the result in the exo-sequencer's register state, and resumes the
shred after the faulting instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Type

from ..errors import (
    DivideByZeroFault,
    ExecutionFault,
    FpOverflowFault,
    UnsupportedOperationFault,
)
from ..isa import semantics
from ..isa.instructions import Effect
from ..isa.program import Program


@dataclass
class CehStats:
    exceptions_proxied: int = 0
    by_type: Dict[str, int] = field(default_factory=dict)


class CehService:
    """IA32-side emulation of faulting exo-sequencer instructions.

    The default policy re-executes the faulting instruction through the
    shared functional semantics with the context switched into *proxy
    mode*: double precision allowed (the IA32 core has x87/SSE2) and
    memory routed through the IA32 sequencer's own translation path.
    Applications may override the policy per fault type, the analogue of
    the paper's "use an OS service such as structured exception handling
    (SEH)".
    """

    def __init__(self):
        self.stats = CehStats()
        self._handlers: Dict[Type[ExecutionFault], Callable] = {}

    def register_handler(self, fault_type: Type[ExecutionFault],
                         handler: Callable) -> None:
        """Install an application-level handler for one fault type.

        The handler receives ``(program, ip, ctx, fault)`` and must return
        an :class:`~repro.isa.instructions.Effect` (or raise to abort the
        shred).
        """
        self._handlers[fault_type] = handler

    def service(self, program: Program, ip: int, ctx,
                fault: ExecutionFault) -> Effect:
        """Handle one shipped exception; returns the emulation's effect."""
        self.stats.exceptions_proxied += 1
        name = type(fault).__name__
        self.stats.by_type[name] = self.stats.by_type.get(name, 0) + 1

        handler = self._lookup(type(fault))
        if handler is not None:
            return handler(program, ip, ctx, fault)
        return self._emulate(program, ip, ctx, fault)

    def _lookup(self, fault_type: Type[ExecutionFault]) -> Optional[Callable]:
        for klass in fault_type.__mro__:
            if klass in self._handlers:
                return self._handlers[klass]
        return None

    def _emulate(self, program: Program, ip: int, ctx,
                 fault: ExecutionFault) -> Effect:
        """Default IEEE-compliant emulation on the IA32 sequencer."""
        if isinstance(fault, DivideByZeroFault):
            # IEEE semantics for the excepting element: +/-inf (float) or a
            # saturated quotient (integer); emulated lane-by-lane below by
            # patching zero divisors, matching "full IEEE compliant
            # handling of the exception on the particular excepting scalar
            # element".
            return self._emulate_div_by_zero(program, ip, ctx)
        if isinstance(fault, (UnsupportedOperationFault, FpOverflowFault)):
            return self._reexecute_in_proxy(program, ip, ctx)
        raise fault  # unknown fault type: abort the shred

    def _reexecute_in_proxy(self, program: Program, ip: int, ctx) -> Effect:
        old_double = getattr(ctx, "supports_double", False)
        old_proxy = getattr(ctx, "proxy_mode", False)
        ctx.supports_double = True
        ctx.proxy_mode = True
        try:
            return semantics.execute(program, ip, ctx)
        finally:
            ctx.supports_double = old_double
            ctx.proxy_mode = old_proxy


    def _emulate_div_by_zero(self, program: Program, ip: int, ctx) -> Effect:
        import numpy as np

        instr = program.instructions[ip]
        n = instr.width
        a = instr.dtype.wrap(instr.srcs[0].read(ctx, n))
        b = instr.dtype.wrap(instr.srcs[1].read(ctx, n))
        zero = b == 0
        if instr.dtype.is_float:
            with np.errstate(divide="ignore", invalid="ignore"):
                result = np.where(zero, np.sign(a) * np.inf, a / np.where(zero, 1, b))
                result = np.where(zero & (a == 0), np.nan, result)
        else:
            # integer divide-by-zero: saturate to the type's extremes, the
            # common SEH recovery policy for media code
            bits = instr.dtype.size * 8
            if instr.dtype.is_signed:
                top = (1 << (bits - 1)) - 1
                bottom = -(1 << (bits - 1))  # two's-complement minimum
            else:
                top = (1 << bits) - 1
                bottom = 0
            result = np.where(zero, np.where(a >= 0, top, bottom),
                              np.trunc(a / np.where(zero, 1, b)))
        instr.dsts[0].write(ctx, result, instr.dtype)
        return Effect()
