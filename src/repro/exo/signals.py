"""User-level inter-sequencer signalling (the MISP mechanism EXO extends).

Two directions exist (paper section 3.1):

* the OS-managed IA32 sequencer issues ``SIGNAL`` to dispatch shred
  continuations to exo-sequencers;
* an exo-sequencer raises a *user-level interrupt* back to the IA32
  sequencer to request proxy execution (ATR page faults, CEH exceptions)
  or to report completion (the ``master_nowait`` asynchronous notify).

In the simulator these are synchronous calls plus an event log: every
signal is recorded with its direction and kind, so tests can assert the
architectural protocol and the timing model can charge per-event costs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


class SignalKind(enum.Enum):
    DISPATCH = "dispatch"  # IA32 -> exo: SIGNAL instruction, shred launch
    ATR_REQUEST = "atr_request"  # exo -> IA32: TLB miss / page fault proxy
    ATR_BATCH = "atr_batch"  # exo -> IA32: coalesced multi-page miss proxy
    CEH_REQUEST = "ceh_request"  # exo -> IA32: exception proxy
    COMPLETION = "completion"  # exo -> IA32: asynchronous completion notify


@dataclass(frozen=True)
class Signal:
    kind: SignalKind
    source: str  # sequencer name
    target: str
    payload: object = None


@dataclass
class SignalLog:
    """Record of every inter-sequencer signal, in order."""

    events: List[Signal] = field(default_factory=list)

    def record(self, signal: Signal) -> None:
        self.events.append(signal)

    def count(self, kind: SignalKind) -> int:
        return sum(1 for s in self.events if s.kind is kind)

    def clear(self) -> None:
        self.events.clear()


class InterruptVector:
    """The IA32 sequencer's user-level interrupt dispatch table.

    Handlers are registered per :class:`SignalKind`; raising a signal
    invokes the handler synchronously (proxy execution suspends the
    faulting shred until the handler returns).
    """

    def __init__(self):
        self._handlers: Dict[SignalKind, Callable[[Signal], object]] = {}

    def register(self, kind: SignalKind,
                 handler: Callable[[Signal], object]) -> None:
        self._handlers[kind] = handler

    def handler_for(self, kind: SignalKind) -> Optional[Callable]:
        return self._handlers.get(kind)

    def raise_signal(self, signal: Signal):
        handler = self._handlers.get(signal.kind)
        if handler is None:
            raise RuntimeError(
                f"no user-level interrupt handler registered for "
                f"{signal.kind.value}")
        return handler(signal)
