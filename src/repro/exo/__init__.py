"""EXO: the Exoskeleton Sequencer architecture (paper section 3).

Exposes heterogeneous accelerator cores as application-managed MIMD
sequencer resources with a shared virtual address space: MISP exoskeleton
signalling, Address Translation Remapping and Collaborative Exception
Handling.
"""

from .atr import AtrService, AtrStats, SharedTranslationCache, transcode_pte
from .ceh import CehService, CehStats
from .exoskeleton import Exoskeleton, ProxyCosts
from .misp import HostShred, MispPool
from .sequencer import ExoSequencer, OsManagedSequencer, Sequencer, SequencerKind
from .shred import ShredDescriptor, ShredState
from .signals import InterruptVector, Signal, SignalKind, SignalLog

__all__ = [
    "AtrService",
    "AtrStats",
    "SharedTranslationCache",
    "transcode_pte",
    "CehService",
    "CehStats",
    "Exoskeleton",
    "ProxyCosts",
    "MispPool",
    "HostShred",
    "Sequencer",
    "SequencerKind",
    "OsManagedSequencer",
    "ExoSequencer",
    "ShredDescriptor",
    "ShredState",
    "Signal",
    "SignalKind",
    "SignalLog",
    "InterruptVector",
]
