"""Shreds: user-level threads of a (possibly non-IA32) ISA.

A *shred* is EXO's unit of application-managed concurrency: "user-level
threads, or shreds, encoded in the accelerator-specific ISA" (section 1).
A :class:`ShredDescriptor` is what the CHI runtime enqueues into the
software work queue — "shred continuation information like instruction and
data pointers to the shared memory" (section 3.4) — and what the emulation
firmware translates into hardware commands.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..isa.program import Program
from ..memory.surface import Surface

_shred_ids = itertools.count(1)


class ShredState(enum.Enum):
    NEW = "new"
    QUEUED = "queued"
    RUNNING = "running"
    SUSPENDED = "suspended"  # waiting on proxy execution (ATR/CEH)
    BLOCKED = "blocked"  # waiting on a producer (taskq dependency)
    DONE = "done"
    FAILED = "failed"


@dataclass
class ShredDescriptor:
    """Everything needed to launch one accelerator shred.

    ``bindings`` carries the private/firstprivate scalar values; each name
    resolves inside the shred's inline assembly (the paper's Figure 6 binds
    the loop index ``i`` this way).  ``surfaces`` maps the shared-clause
    variables to their surface objects (interpreted through descriptors,
    section 4.4).
    """

    program: Program
    bindings: Dict[str, float] = field(default_factory=dict)
    surfaces: Dict[str, Surface] = field(default_factory=dict)
    entry: int = 0  # instruction pointer at launch
    shred_id: int = field(default_factory=lambda: next(_shred_ids))
    parent_id: Optional[int] = None
    depends_on: tuple = ()  # producer shred ids (taskq/task dependencies)
    state: ShredState = ShredState.NEW

    def spawn_child(self, arg: float) -> "ShredDescriptor":
        """A shred created *by* a GMA shred ("GMA X3000 shreds can be
        spawned from another GMA X3000 shred", section 3.4)."""
        bindings = dict(self.bindings)
        bindings["__spawn_arg"] = arg
        return ShredDescriptor(
            program=self.program,
            bindings=bindings,
            surfaces=self.surfaces,
            entry=self.entry,
            parent_id=self.shred_id,
        )

    def __repr__(self) -> str:
        return (f"ShredDescriptor(id={self.shred_id}, "
                f"program={self.program.name!r}, state={self.state.value})")
