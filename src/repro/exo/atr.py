"""Address Translation Remapping (paper section 3.2).

The exo-sequencer's TLB understands only GPU-format (GTT) entries; the OS
maintains IA32-format page tables.  ATR bridges the two:

1. the exo-sequencer takes a TLB miss and suspends the shred;
2. it signals the IA32 sequencer, which proxy-executes the fault — i.e.
   touches the virtual address so the OS's demand-paging handler maps it;
3. ATR *transcodes* the now-valid IA32 PTE into the exo-sequencer's native
   entry format and inserts it into the exo-sequencer's TLB;
4. both TLBs now point at the same physical page, and the shred resumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..memory.address_space import AddressSpace, SequencerView
from ..memory.gtt import GttMemType, make_gtt_entry
from ..memory.paging import PTE_CACHE_DISABLE, PTE_PRESENT, pte_pfn
from ..memory.physical import PAGE_SHIFT


def transcode_pte(ia32_pte: int) -> int:
    """Convert a present IA32 PTE into a GTT entry for the same frame.

    This is the "address translation remapping mechanism ... responsible
    for remapping the IA32 page entry to the native format on the
    accelerator" (Figure 2).
    """
    if not ia32_pte & PTE_PRESENT:
        raise ValueError("cannot transcode a non-present PTE")
    memtype = (GttMemType.UNCACHED if ia32_pte & PTE_CACHE_DISABLE
               else GttMemType.WRITE_BACK)
    return make_gtt_entry(pte_pfn(ia32_pte), memtype)


@dataclass
class AtrStats:
    tlb_misses: int = 0
    page_faults_proxied: int = 0
    entries_transcoded: int = 0
    faulting_vaddrs: list = field(default_factory=list)


class AtrService:
    """The IA32-side proxy handler for exo-sequencer translation misses."""

    def __init__(self, space: AddressSpace):
        self.space = space
        self.stats = AtrStats()

    def service(self, view: SequencerView, vaddr: int, write: bool) -> int:
        """Handle one exo-sequencer TLB miss; returns the GTT entry installed."""
        self.stats.tlb_misses += 1
        self.stats.faulting_vaddrs.append(vaddr)
        vpn = vaddr >> PAGE_SHIFT
        pte = self.space.page_table.entry(vpn)
        if not pte & PTE_PRESENT:
            # Proxy execution: the IA32 shred touches the address on behalf
            # of the exo-sequencer, driving the OS demand-paging handler.
            self.space.handle_fault(vaddr, write=write)
            self.stats.page_faults_proxied += 1
            pte = self.space.page_table.entry(vpn)
        entry = transcode_pte(pte)
        view.gtt[vpn] = entry  # install in the device page table...
        view.tlb.insert(vpn, entry)  # ...and the TLB itself
        self.stats.entries_transcoded += 1
        return entry
