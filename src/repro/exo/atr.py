"""Address Translation Remapping (paper section 3.2).

The exo-sequencer's TLB understands only GPU-format (GTT) entries; the OS
maintains IA32-format page tables.  ATR bridges the two:

1. the exo-sequencer takes a TLB miss and suspends the shred;
2. it signals the IA32 sequencer, which proxy-executes the fault — i.e.
   touches the virtual address so the OS's demand-paging handler maps it;
3. ATR *transcodes* the now-valid IA32 PTE into the exo-sequencer's native
   entry format and inserts it into the exo-sequencer's TLB;
4. both TLBs now point at the same physical page, and the shred resumes.

Two additions beyond the paper's per-miss protocol:

* **Batched miss service** (:meth:`AtrService.service_batch`): one access
  that spans several unmapped pages — or a launch-time surface validation
  pass — coalesces its misses to distinct VPNs and services them all in a
  single proxy round trip.
* **A shared second-level translation cache** consulted before the IA32
  page-table walk: with N devices sharing one address space, the first
  device to fault on a hot page pays the walk + transcode; the other N-1
  refill from the shared cache.  Shootdown broadcasts from the address
  space invalidate it alongside the device TLBs/GTTs, so it can never
  outlive the IA32 mapping it was transcoded from.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..errors import ProtectionFault, TranslationFault
from ..memory.address_space import AddressSpace, SequencerView
from ..memory.gtt import GttMemType, make_gtt_entry
from ..memory.paging import (
    PTE_CACHE_DISABLE,
    PTE_PRESENT,
    PTE_WRITABLE,
    pte_pfn,
)
from ..memory.physical import PAGE_SHIFT

#: Entries kept in :attr:`AtrStats.faulting_vaddrs`.  Total counts stay
#: exact in the integer counters; the ring only keeps the most recent
#: addresses for debugging, so long multi-device studies don't leak.
FAULT_RING_CAPACITY = 256


def transcode_pte(ia32_pte: int) -> int:
    """Convert a present IA32 PTE into a GTT entry for the same frame.

    This is the "address translation remapping mechanism ... responsible
    for remapping the IA32 page entry to the native format on the
    accelerator" (Figure 2).
    """
    if not ia32_pte & PTE_PRESENT:
        raise ValueError("cannot transcode a non-present PTE")
    memtype = (GttMemType.UNCACHED if ia32_pte & PTE_CACHE_DISABLE
               else GttMemType.WRITE_BACK)
    return make_gtt_entry(pte_pfn(ia32_pte), memtype)


@dataclass
class AtrStats:
    tlb_misses: int = 0
    page_faults_proxied: int = 0
    entries_transcoded: int = 0
    #: Invalidation broadcasts observed from the address space.
    shootdowns: int = 0
    #: Pages covered by those broadcasts (sum over broadcasts).
    shootdown_pages: int = 0
    #: Batched round trips and the misses they coalesced.
    batches: int = 0
    batched_misses: int = 0
    #: Shared second-level translation cache outcomes.
    shared_cache_hits: int = 0
    shared_cache_misses: int = 0
    #: Most recent faulting addresses (bounded ring; see
    #: :data:`FAULT_RING_CAPACITY`).
    faulting_vaddrs: list = field(default_factory=list)
    faulting_vaddrs_capacity: int = FAULT_RING_CAPACITY

    def record_fault(self, vaddr: int) -> None:
        ring = self.faulting_vaddrs
        ring.append(vaddr)
        excess = len(ring) - self.faulting_vaddrs_capacity
        if excess > 0:
            del ring[:excess]


class SharedTranslationCache:
    """A second-level translation cache shared by every device's ATR path.

    Maps VPN -> (GTT entry, writable) with LRU replacement.  ``writable``
    is remembered because GTT entries carry no protection bits: a write
    miss that hits a read-only cached entry must still fall through to the
    IA32 walk so the protection fault surfaces.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("translation cache capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, vpn: int) -> Optional[Tuple[int, bool]]:
        cached = self._entries.get(vpn)
        if cached is None:
            self.misses += 1
            return None
        self._entries.move_to_end(vpn)
        self.hits += 1
        return cached

    def put(self, vpn: int, entry: int, writable: bool) -> None:
        if vpn in self._entries:
            self._entries.move_to_end(vpn)
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[vpn] = (entry, writable)

    def invalidate(self, vpn: Optional[int] = None) -> None:
        if vpn is None:
            self._entries.clear()
        else:
            self._entries.pop(vpn, None)

    def invalidate_many(self, vpns: Iterable[int]) -> int:
        """Drop every listed VPN; returns how many were actually cached.

        One shootdown broadcast (local or forwarded over a worker pipe)
        can cover a whole surface, so bulk invalidation is the common
        case — and the returned count is what coherence tests assert on.
        """
        dropped = 0
        for vpn in vpns:
            if self._entries.pop(vpn, None) is not None:
                dropped += 1
        return dropped

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries


class AtrService:
    """The IA32-side proxy handler for exo-sequencer translation misses."""

    def __init__(self, space: AddressSpace,
                 shared_cache: Optional[SharedTranslationCache] = None,
                 use_shared_cache: bool = True):
        self.space = space
        self.stats = AtrStats()
        self.shared_cache = (shared_cache if shared_cache is not None
                             else SharedTranslationCache()
                             if use_shared_cache else None)
        space.add_shootdown_listener(self._on_shootdown)

    # -- coherence ---------------------------------------------------------------

    def _on_shootdown(self, vpns: Sequence[int], reason: str) -> None:
        self.stats.shootdowns += 1
        self.stats.shootdown_pages += len(vpns)
        if self.shared_cache is not None:
            self.shared_cache.invalidate_many(vpns)

    # -- miss service ------------------------------------------------------------

    def service(self, view: SequencerView, vaddr: int, write: bool) -> int:
        """Handle one exo-sequencer TLB miss; returns the GTT entry installed."""
        self.stats.tlb_misses += 1
        self.stats.record_fault(vaddr)
        vpn = vaddr >> PAGE_SHIFT
        entry = self._resolve_vpn(vpn, write)
        view.gtt[vpn] = entry  # install in the device page table...
        view.tlb.insert(vpn, entry)  # ...and the TLB itself
        return entry

    def service_batch(self, view: SequencerView, vaddrs: Iterable[int],
                      write: bool = False) -> Dict[int, int]:
        """Service many misses in one proxy round trip.

        Coalesces ``vaddrs`` to distinct VPNs, resolves every fault in one
        pass (shared cache, then walk/proxy), and bulk-installs the
        transcoded entries into the view's GTT and TLB.  Returns the
        VPN -> GTT-entry map installed.
        """
        vpns: list = []
        seen = set()
        for vaddr in vaddrs:
            vpn = vaddr >> PAGE_SHIFT
            if vpn not in seen:
                seen.add(vpn)
                vpns.append(vpn)
        if not vpns:
            return {}
        self.stats.batches += 1
        entries: Dict[int, int] = {}
        for vpn in vpns:
            self.stats.tlb_misses += 1
            self.stats.batched_misses += 1
            self.stats.record_fault(vpn << PAGE_SHIFT)
            entries[vpn] = self._resolve_vpn(vpn, write)
        gtt = view.gtt
        tlb = view.tlb
        for vpn, entry in entries.items():
            gtt[vpn] = entry
            tlb.insert(vpn, entry)
        return entries

    def _resolve_vpn(self, vpn: int, write: bool) -> int:
        """One VPN's GTT entry: shared cache, else walk + proxy + transcode."""
        vaddr = vpn << PAGE_SHIFT
        if self.shared_cache is not None:
            cached = self.shared_cache.get(vpn)
            if cached is not None:
                entry, writable = cached
                if writable or not write:
                    self.stats.shared_cache_hits += 1
                    return entry
                # write against an entry cached read-only: re-walk so the
                # protection fault is raised from the authoritative tables
            else:
                self.stats.shared_cache_misses += 1
        pte = self.space.page_table.entry(vpn)
        if not pte & PTE_PRESENT:
            if not self.space.demand_paging:
                raise TranslationFault(vaddr, write=write)
            # Proxy execution: the IA32 shred touches the address on behalf
            # of the exo-sequencer, driving the OS demand-paging handler.
            self.space.handle_fault(vaddr, write=write)
            self.stats.page_faults_proxied += 1
            pte = self.space.page_table.entry(vpn)
            if not pte & PTE_PRESENT:
                raise TranslationFault(vaddr, write=write)
        if write and not pte & PTE_WRITABLE:
            raise ProtectionFault(vaddr, write=True)
        entry = transcode_pte(pte)
        self.stats.entries_transcoded += 1
        if self.shared_cache is not None:
            self.shared_cache.put(vpn, entry, bool(pte & PTE_WRITABLE))
        return entry
