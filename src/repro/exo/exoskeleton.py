"""The MISP exoskeleton: making a non-IA32 accelerator a MISP sequencer.

"EXO provides a minimal architectural wrapper, or exoskeleton, to make a
non-IA32 heterogeneous accelerator sequencer conform to the MISP
inter-sequencer signaling mechanism" (section 3.1).  Concretely this class

* carries the ``SIGNAL`` dispatch path from the IA32 sequencer to the
  exo-sequencers (used by the CHI runtime to launch shreds);
* converts the architectural events raised during exo-sequencer execution
  (:class:`~repro.errors.TlbMiss` -> ATR, :class:`~repro.errors.ExecutionFault`
  -> CEH) into user-level interrupts on the IA32 sequencer and runs the
  corresponding proxy service;
* delivers asynchronous completion notifications (``master_nowait``).

Costs: every proxy round trip charges the timing model; the counters here
are consumed by :mod:`repro.perf.model`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from ..errors import ExecutionFault
from ..isa.instructions import Effect
from ..isa.program import Program
from ..memory.address_space import AddressSpace, SequencerView
from ..memory.physical import PAGE_SHIFT
from .atr import AtrService
from .ceh import CehService
from .sequencer import OsManagedSequencer
from .shred import ShredDescriptor
from .signals import InterruptVector, Signal, SignalKind, SignalLog


@dataclass(frozen=True)
class ProxyCosts:
    """Seconds charged per proxy round trip (signal + handler + resume).

    MISP-style user-level interrupts avoid OS context switches; these are
    microsecond-scale events dominated by pipeline drain + handler work.
    A batched ATR request pays the round trip once plus a small per-extra-
    entry transcode cost — the amortization that makes batching pay.
    """

    atr_seconds: float = 2.0e-6
    atr_entry_seconds: float = 0.1e-6
    ceh_seconds: float = 4.0e-6
    dispatch_seconds: float = 0.5e-6


class Exoskeleton:
    """The signalling fabric between the IA32 sequencer and exo-sequencers."""

    def __init__(self, space: AddressSpace,
                 host: Optional[OsManagedSequencer] = None,
                 costs: Optional[ProxyCosts] = None,
                 atr_shared_cache: bool = True):
        self.space = space
        self.host = host or OsManagedSequencer()
        self.costs = costs if costs is not None else ProxyCosts()
        # Proxy services model *one* IA32 sequencer handling user-level
        # interrupts serially; when several fabric devices drain on worker
        # threads (drain_devices(parallel=True)) their requests must still
        # serialize through this point.
        self._proxy_lock = threading.RLock()
        self.log = SignalLog()
        self.vector = InterruptVector()
        self.atr = AtrService(space, use_shared_cache=atr_shared_cache)
        self.ceh = CehService()
        self.vector.register(SignalKind.ATR_REQUEST, self._handle_atr)
        self.vector.register(SignalKind.ATR_BATCH, self._handle_atr_batch)
        self.vector.register(SignalKind.CEH_REQUEST, self._handle_ceh)
        self.vector.register(SignalKind.COMPLETION, lambda s: None)
        self.completions: list = []

    # -- IA32 -> exo ------------------------------------------------------------

    def signal_dispatch(self, shred: ShredDescriptor, target: str) -> None:
        """The MISP ``SIGNAL`` instruction: hand a shred continuation to an
        exo-sequencer (via the firmware's work queue)."""
        with self._proxy_lock:
            self.log.record(Signal(SignalKind.DISPATCH, self.host.name,
                                   target, payload=shred.shred_id))
            self.host.proxy_seconds += self.costs.dispatch_seconds

    # -- exo -> IA32 (proxy execution) ----------------------------------------------

    def request_atr(self, view: SequencerView, vaddr: int, write: bool,
                    source: str) -> int:
        """Exo-sequencer TLB miss: suspend, proxy on IA32, transcode, resume."""
        with self._proxy_lock:
            signal = Signal(SignalKind.ATR_REQUEST, source, self.host.name,
                            payload=(view, vaddr, write))
            self.log.record(signal)
            self.host.proxy_events += 1
            self.host.proxy_seconds += self.costs.atr_seconds
            return self.vector.raise_signal(signal)

    def request_atr_batch(self, view: SequencerView, vaddrs, write: bool,
                          source: str) -> dict:
        """Coalesced exo-sequencer misses: one proxy round trip services
        every missing page of an access (or a launch-time surface pass).

        Charges one ATR round trip plus a per-extra-entry transcode cost,
        instead of a full round trip per page — the fast path that keeps N
        devices faulting on the same surfaces off the IA32 critical path.
        """
        vaddrs = tuple(vaddrs)
        with self._proxy_lock:
            signal = Signal(SignalKind.ATR_BATCH, source, self.host.name,
                            payload=(view, vaddrs, write))
            self.log.record(signal)
            self.host.proxy_events += 1
            distinct = len({v >> PAGE_SHIFT for v in vaddrs})
            self.host.proxy_seconds += (
                self.costs.atr_seconds
                + self.costs.atr_entry_seconds * max(0, distinct - 1))
            return self.vector.raise_signal(signal)

    def request_ceh(self, program: Program, ip: int, ctx,
                    fault: ExecutionFault, source: str) -> Effect:
        """Exo-sequencer exception: ship to IA32 for collaborative handling."""
        with self._proxy_lock:
            signal = Signal(SignalKind.CEH_REQUEST, source, self.host.name,
                            payload=(program, ip, ctx, fault))
            self.log.record(signal)
            self.host.proxy_events += 1
            self.host.proxy_seconds += self.costs.ceh_seconds
            return self.vector.raise_signal(signal)

    def notify_completion(self, shred: ShredDescriptor, source: str) -> None:
        """Asynchronous completion notify (``master_nowait`` support)."""
        with self._proxy_lock:
            signal = Signal(SignalKind.COMPLETION, source, self.host.name,
                            payload=shred.shred_id)
            self.log.record(signal)
            self.completions.append(shred.shred_id)
            self.vector.raise_signal(signal)

    # -- default handlers ------------------------------------------------------------

    def _handle_atr(self, signal: Signal) -> int:
        view, vaddr, write = signal.payload
        return self.atr.service(view, vaddr, write)

    def _handle_atr_batch(self, signal: Signal) -> dict:
        view, vaddrs, write = signal.payload
        return self.atr.service_batch(view, vaddrs, write=write)

    def _handle_ceh(self, signal: Signal) -> Effect:
        program, ip, ctx, fault = signal.payload
        return self.ceh.service(program, ip, ctx, fault)
