"""Sequencer abstractions: OS-managed vs. application-managed (exo-).

EXO's central idea is the *kind* split: the OS schedules exactly one
sequencer class (IA32), and everything else is an application-level MIMD
resource wrapped in a MISP exoskeleton.  These classes carry identity and
accounting; the execution engines live in :mod:`repro.gma` (exo side) and
:mod:`repro.cpu` (IA32 side).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SequencerKind(enum.Enum):
    OS_MANAGED = "os-managed"  # visible to and scheduled by the OS
    EXO = "exo"  # application-managed, reached only via SIGNAL


@dataclass
class Sequencer:
    """One instruction sequencer in the platform."""

    name: str
    kind: SequencerKind
    isa: str  # "IA32" or the accelerator ISA name, e.g. "X3000"

    def __str__(self) -> str:
        return f"{self.name}({self.isa})"


@dataclass
class OsManagedSequencer(Sequencer):
    """The IA32 CPU sequencer: runs the main shred and all proxy handlers."""

    proxy_events: int = 0
    proxy_seconds: float = 0.0

    def __init__(self, name: str = "ia32-0"):
        super().__init__(name=name, kind=SequencerKind.OS_MANAGED, isa="IA32")
        self.proxy_events = 0
        self.proxy_seconds = 0.0


@dataclass
class ExoSequencer(Sequencer):
    """One accelerator hardware thread context, exposed via the exoskeleton.

    For the GMA X3000 there are 32 of these: 8 EUs x 4 thread contexts
    (paper Figure 3).  ``eu`` and ``slot`` identify the physical context.
    """

    eu: int = 0
    slot: int = 0
    shreds_retired: int = field(default=0)

    def __init__(self, name: str, isa: str, eu: int, slot: int):
        super().__init__(name=name, kind=SequencerKind.EXO, isa=isa)
        self.eu = eu
        self.slot = slot
        self.shreds_retired = 0
