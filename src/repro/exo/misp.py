"""MISP: application-managed IA32 sequencers (the substrate EXO extends).

Paper section 3.1: "Like application-managed sequencers in the MISP
architecture [11], the non-IA32 cores are architecturally exposed to the
programmer as a new form of sequencer resource."  MISP's own contribution
was *homogeneous* user-level multi-shredding: extra IA32 cores hidden from
the OS, reached via ``SIGNAL``, scheduled by a user-level runtime
(Shredlib).  EXO reuses that whole mechanism and adds the exoskeleton so
non-IA32 cores can join in.

This module reproduces the MISP half: a pool of application-managed IA32
sequencers executing *host shreds* (Python callables with an attached
:class:`~repro.cpu.ia32.CpuWork` cost).  The Santa Rosa prototype's Core 2
Duo has two cores: one OS-managed sequencer plus one AMS, which is the
default pool size.  The pool's timing composes with the CHI timeline the
same way GMA regions do, so IA32 shreds, MISP shreds and exo-sequencer
shreds can all overlap — Figure 1(b)'s full picture.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..cpu.ia32 import CpuWork, Ia32Cpu
from ..cpu.timing import CpuTimingConfig
from ..errors import SchedulingError
from .sequencer import Sequencer, SequencerKind
from .signals import Signal, SignalKind, SignalLog

_handle_ids = itertools.count(1)


@dataclass
class HostShred:
    """One IA32 shred: a callable plus its modelled cost."""

    fn: Callable[[], object]
    work: CpuWork
    handle: int = field(default_factory=lambda: next(_handle_ids))
    result: object = None
    done: bool = False
    seconds: float = 0.0
    sequencer: Optional[str] = None


class MispPool:
    """A Shredlib-style user-level scheduler over IA32 AMS.

    ``shred_create`` enqueues work; ``run_all`` executes every pending
    shred functionally and assigns them to application-managed sequencers
    greedily (earliest-finishing sequencer takes the next shred, the
    work-queue behaviour of Shredlib); ``shred_join`` returns a shred's
    result after the pool ran.
    """

    def __init__(self, num_sequencers: int = 1,
                 cpu_config: Optional[CpuTimingConfig] = None,
                 log: Optional[SignalLog] = None):
        if num_sequencers < 1:
            raise SchedulingError("a MISP pool needs at least one AMS")
        self.sequencers = [
            Sequencer(name=f"ams-{i}", kind=SequencerKind.EXO, isa="IA32")
            for i in range(num_sequencers)
        ]
        self.cpu = Ia32Cpu(cpu_config if cpu_config is not None
                           else CpuTimingConfig())
        self.log = log or SignalLog()
        self._pending: List[HostShred] = []
        self._finished: dict = {}
        self.elapsed_seconds = 0.0

    # -- Shredlib API -----------------------------------------------------------

    def shred_create(self, fn: Callable[[], object],
                     work: CpuWork) -> int:
        """Enqueue one IA32 shred; returns its join handle."""
        shred = HostShred(fn=fn, work=work)
        self._pending.append(shred)
        return shred.handle

    def shred_join(self, handle: int):
        """Result of a completed shred (after :meth:`run_all`)."""
        if handle in self._finished:
            return self._finished[handle].result
        if any(s.handle == handle for s in self._pending):
            raise SchedulingError(
                f"shred {handle} has not run yet; call run_all() first")
        raise SchedulingError(f"unknown shred handle {handle}")

    def run_all(self, timeline=None) -> float:
        """Run every pending shred; returns the pool's elapsed seconds.

        Functional execution is immediate; timing assigns shreds to the
        AMS greedily in FIFO order.  With a CHI ``timeline`` the elapsed
        time is charged as main-shred-visible host work.
        """
        finish = [0.0] * len(self.sequencers)
        for shred in self._pending:
            shred.result = shred.fn()
            shred.done = True
            shred.seconds = self.cpu.execute(shred.work).seconds
            slot = min(range(len(finish)), key=finish.__getitem__)
            shred.sequencer = self.sequencers[slot].name
            self.log.record(Signal(SignalKind.DISPATCH, "ia32-0",
                                   shred.sequencer, payload=shred.handle))
            finish[slot] += shred.seconds
            self.log.record(Signal(SignalKind.COMPLETION, shred.sequencer,
                                   "ia32-0", payload=shred.handle))
            self._finished[shred.handle] = shred
        self._pending.clear()
        elapsed = max(finish, default=0.0)
        self.elapsed_seconds += elapsed
        if timeline is not None:
            timeline.host_busy(elapsed, "misp-pool")
        return elapsed

    @property
    def pending(self) -> int:
        return len(self._pending)
