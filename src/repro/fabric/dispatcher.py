"""Event-driven work-stealing dispatch across fabric devices.

This generalizes the closed-form policies of
:mod:`repro.chi.scheduler` — ``static`` / ``oracle`` / ``dynamic``
partitioning of one loop between two sequencer classes — to *real work
queues* over any number of devices on the simulated timeline.  The
mechanism is the one section 5.3 describes as ongoing work: "whenever a
sequencer completes its assigned work it requests additional work of the
runtime".  Here the request is a steal: a device whose local queue has
nothing runnable takes a ready item from the most-loaded peer.

Three properties the dispatcher honors:

* **priority** — among ready items in a queue, the highest per-shred
  priority (CHI API #5) runs first, FIFO among equals;
* **dependencies** — an item never starts before every ``depends_on``
  producer has finished, even when the producer ran on another device;
* **heterogeneous cost** — one item may cost different simulated seconds
  on different devices (the IA32 sequencer vs a GMA core), which is
  exactly what makes the steady state converge to
  :func:`~repro.chi.scheduler.oracle_partition` as items shrink.
"""

from __future__ import annotations

import heapq
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SchedulingError
from ..exo.shred import ShredDescriptor


@dataclass
class WorkItem:
    """One schedulable unit: a shred, a shred group, or a loop chunk.

    ``costs`` maps device name to the simulated seconds that device needs
    for the item; the wildcard key ``"*"`` supplies a default for devices
    not named explicitly.
    """

    ident: int
    costs: Dict[str, float]
    priority: float = 0.0
    depends_on: Tuple[int, ...] = ()
    payload: object = None

    def cost_on(self, device: str) -> float:
        cost = self.costs.get(device, self.costs.get("*"))
        if cost is None:
            raise SchedulingError(
                f"work item {self.ident} has no cost for device "
                f"{device!r} (knows {sorted(self.costs)})")
        return cost


@dataclass
class DispatchOutcome:
    """Where everything ran and what it cost."""

    assignments: Dict[str, List[WorkItem]] = field(default_factory=dict)
    #: item ident -> (start, finish, device name), simulated seconds.
    spans: Dict[int, Tuple[float, float, str]] = field(default_factory=dict)
    busy_seconds: Dict[str, float] = field(default_factory=dict)
    makespan: float = 0.0
    steals: int = 0

    def items_on(self, device: str) -> List[WorkItem]:
        return self.assignments.get(device, [])

    def partition_outcome(self, cpu_device: str, gma_device: str):
        """View a two-device dispatch as a
        :class:`~repro.chi.scheduler.PartitionOutcome` for comparison with
        the analytic policies."""
        from ..chi.scheduler import PartitionOutcome

        total = sum(len(v) for v in self.assignments.values())
        on_cpu = len(self.items_on(cpu_device))
        return PartitionOutcome(
            policy=f"work-stealing-{total}",
            cpu_fraction=on_cpu / total if total else 0.0,
            cpu_busy_seconds=self.busy_seconds.get(cpu_device, 0.0),
            gma_busy_seconds=self.busy_seconds.get(gma_device, 0.0),
        )


class WorkStealingDispatcher:
    """Discrete-event simulation of per-device queues plus stealing.

    Each device drains its local queue in priority/FIFO order; a device
    with nothing runnable steals the best ready item from the peer whose
    queue holds the most remaining work.  Items whose producers are still
    in flight block (on whichever queue they sit) until the producer's
    finish time.
    """

    def __init__(self, devices: Sequence[str]):
        if not devices:
            raise SchedulingError("dispatcher needs at least one device")
        if len(set(devices)) != len(devices):
            raise SchedulingError(f"duplicate device names in {devices}")
        self.devices = list(devices)

    def dispatch(self, items: Sequence[WorkItem],
                 initial: Optional[Dict[str, Sequence[WorkItem]]] = None,
                 ) -> DispatchOutcome:
        """Run every item to completion; returns the full schedule.

        ``initial`` pins the starting queue contents per device (unlisted
        items are an error); by default items are dealt out in contiguous
        blocks, which keeps neighbouring items — and the memory lines
        they share — on one device (round-robin interleaving would double
        every device's line traffic).
        """
        items = list(items)
        outcome = DispatchOutcome(
            assignments={name: [] for name in self.devices},
            busy_seconds={name: 0.0 for name in self.devices},
        )
        if not items:
            return outcome
        known = {item.ident for item in items}
        if len(known) != len(items):
            raise SchedulingError("work items carry duplicate idents")
        for item in items:
            missing = [d for d in item.depends_on if d not in known]
            if missing:
                raise SchedulingError(
                    f"work item {item.ident} depends on {missing} which "
                    f"are not part of this dispatch and never complete")

        lanes = self._place(items, initial)
        finish: Dict[int, float] = {}
        remaining = len(items)
        counter = 0  # heap tie-break keeps device order deterministic
        events = []
        for name in self.devices:
            heapq.heappush(events, (0.0, counter, name))
            counter += 1

        while remaining:
            now, _, device = heapq.heappop(events)
            item, stolen = self._acquire(device, lanes, finish, now)
            if item is None:
                wake = self._next_wake(finish, now)
                if wake is None:
                    stuck = sorted(i.ident for lane in lanes.values()
                                   for i in lane)
                    raise SchedulingError(
                        f"dispatch deadlock: items {stuck} wait on "
                        f"dependencies that never complete")
                heapq.heappush(events, (wake, counter, device))
                counter += 1
                continue
            if stolen:
                outcome.steals += 1
            start = max([now] + [finish[d] for d in item.depends_on])
            end = start + item.cost_on(device)
            finish[item.ident] = end
            outcome.spans[item.ident] = (start, end, device)
            outcome.assignments[device].append(item)
            outcome.busy_seconds[device] += end - start
            remaining -= 1
            heapq.heappush(events, (end, counter, device))
            counter += 1

        outcome.makespan = max(f for _, f, _ in outcome.spans.values())
        return outcome

    # -- internals ---------------------------------------------------------

    def _place(self, items: Sequence[WorkItem],
               initial: Optional[Dict[str, Sequence[WorkItem]]],
               ) -> Dict[str, List[WorkItem]]:
        if initial is None:
            lanes: Dict[str, List[WorkItem]] = {n: [] for n in self.devices}
            # contiguous blocks, sized as evenly as the count allows
            quotient, remainder = divmod(len(items), len(self.devices))
            start = 0
            for rank, name in enumerate(self.devices):
                size = quotient + (1 if rank < remainder else 0)
                lanes[name] = list(items[start:start + size])
                start += size
            return lanes
        unknown = set(initial) - set(self.devices)
        if unknown:
            raise SchedulingError(
                f"initial placement names unknown devices {sorted(unknown)}")
        lanes = {n: list(initial.get(n, ())) for n in self.devices}
        placed = [i.ident for lane in lanes.values() for i in lane]
        if sorted(placed) != sorted(i.ident for i in items):
            raise SchedulingError(
                "initial placement must cover every work item exactly once")
        return lanes

    def _acquire(self, device: str, lanes: Dict[str, List[WorkItem]],
                 finish: Dict[int, float], now: float):
        """The device's next item: local queue first, then a steal."""
        item = self._take_ready(lanes[device], finish, now)
        if item is not None:
            return item, False
        # steal from the peer with the most queued work (measured on the
        # victim: that is whose critical path the steal relieves)
        victims = sorted(
            (name for name in self.devices
             if name != device and lanes[name]),
            key=lambda name: -sum(i.cost_on(name) for i in lanes[name]))
        for victim in victims:
            item = self._take_ready(lanes[victim], finish, now)
            if item is not None:
                return item, True
        return None, False

    @staticmethod
    def _take_ready(lane: List[WorkItem], finish: Dict[int, float],
                    now: float) -> Optional[WorkItem]:
        """Pop the highest-priority ready item (FIFO among equals)."""
        best = None
        for idx, item in enumerate(lane):
            if all(d in finish and finish[d] <= now
                   for d in item.depends_on):
                if best is None or item.priority > lane[best].priority:
                    best = idx
        if best is None:
            return None
        return lane.pop(best)

    @staticmethod
    def _next_wake(finish: Dict[int, float], now: float) -> Optional[float]:
        pending = [t for t in finish.values() if t > now]
        return min(pending) if pending else None


#: Minimum shreds queued on *every* device before ``parallel=True``
#: actually spawns threads.  Below this the per-device drains finish in
#: well under a millisecond each, so thread startup and GIL handoff cost
#: more than they hide (BENCH_engine.json measured 0.27s threaded vs
#: 0.25s serial at 4 devices x 8 short shreds).
PARALLEL_DRAIN_MIN_SHREDS = 16


def drain_devices(assignments, parallel=False):
    """Run each ``(device, shreds)`` assignment and collect its report.

    The functional/timing model of every device is single-threaded and
    deterministic, and exoskeleton proxy services serialize internally.
    With ``parallel=True`` each device drains on its own
    :class:`~concurrent.futures.ThreadPoolExecutor` worker — but only
    when every assignment queues at least
    :data:`PARALLEL_DRAIN_MIN_SHREDS` shreds; smaller drains fall back
    to serial, where they measure faster (thread startup dominates).
    Pass ``parallel="force"`` to thread regardless of size.  When the
    concurrently drained assignments touch *disjoint* surfaces — the
    normal partitioned-launch shape — threading changes host wall-clock
    only, never simulated time or results.  Devices do share the host
    :class:`~repro.memory.address_space.AddressSpace`, so if kernels on
    different devices read and write overlapping surfaces their accesses
    interleave nondeterministically under a threaded drain: keep such
    work on one device, or drain serially.  Per-device predecode
    hit/miss deltas are also approximate under a threaded drain (the
    cache and its counters are process wide); fleet totals stay exact.

    Pass ``parallel="process"`` when the devices are
    :class:`~repro.fabric.workers.ProcessGmaFabricDevice` proxies: each
    host thread just blocks on its worker's pipe while the *child
    process* drains, so the GIL never serializes the actual execution
    and the size threshold does not apply.  ``drain_mode`` reports
    ``"process"``.

    Every report's ``wall_seconds`` records the host wall-clock the drain
    spent inside ``run_shreds`` (useful next to the simulated ``seconds``
    in the fabric Chrome trace), and ``drain_mode`` records whether this
    drain ran ``"process"``, ``"parallel"`` or ``"serial"``.  Empty
    assignments are skipped; report order always matches assignment
    order.
    """
    pairs = [(device, list(shreds)) for device, shreds in assignments
             if shreds]
    if parallel == "process":
        # Threads only wait on pipes; the compute happens in worker
        # processes, so even one assignment gains nothing from gating.
        threaded = len(pairs) > 1
        mode = "process"
    else:
        threaded = bool(parallel) and len(pairs) > 1 and (
            parallel == "force"
            or min(len(shreds) for _, shreds in pairs)
            >= PARALLEL_DRAIN_MIN_SHREDS)
        mode = "parallel" if threaded else "serial"

    def _run(pair):
        device, shreds = pair
        t0 = time.perf_counter()
        report = device.run_shreds(shreds)
        report.wall_seconds = time.perf_counter() - t0
        report.drain_mode = mode
        return report

    if threaded:
        with ThreadPoolExecutor(max_workers=len(pairs)) as pool:
            return list(pool.map(_run, pairs))
    return [_run(pair) for pair in pairs]


def dependency_groups(
        shreds: Sequence[ShredDescriptor]) -> List[List[ShredDescriptor]]:
    """Partition a batch into connected components of ``depends_on``.

    A producer and its consumers must land on the same device (the device
    work queue resolves dependencies locally, exactly as the paper's
    software work queue does), so the dispatcher schedules whole
    components.  Order is preserved within and across groups.
    """
    index = {s.shred_id: i for i, s in enumerate(shreds)}
    parent = list(range(len(shreds)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i, shred in enumerate(shreds):
        for dep in shred.depends_on:
            j = index.get(dep)
            if j is not None:
                ri, rj = find(i), find(j)
                if ri != rj:
                    parent[max(ri, rj)] = min(ri, rj)

    groups: Dict[int, List[ShredDescriptor]] = {}
    for i, shred in enumerate(shreds):
        groups.setdefault(find(i), []).append(shred)
    return [groups[root] for root in sorted(groups)]


def work_stealing_partition(cpu_full_seconds: float,
                            gma_full_seconds: float,
                            num_chunks: int):
    """The dispatcher run over one two-sequencer loop, as a
    :class:`~repro.chi.scheduler.PartitionOutcome`.

    All chunks start on the GMA queue — the shared software work queue of
    section 3.4 — and the idle IA32 sequencer steals; this is the queue
    realization of :func:`~repro.chi.scheduler.dynamic_partition`, and it
    converges to :func:`~repro.chi.scheduler.oracle_partition` as
    ``num_chunks`` grows.
    """
    if num_chunks < 1:
        raise SchedulingError("need at least one chunk")
    items = [
        WorkItem(ident=i, costs={"cpu": cpu_full_seconds / num_chunks,
                                 "gma": gma_full_seconds / num_chunks})
        for i in range(num_chunks)
    ]
    dispatcher = WorkStealingDispatcher(["cpu", "gma"])
    outcome = dispatcher.dispatch(items, initial={"gma": items})
    partition = outcome.partition_outcome("cpu", "gma")
    return partition
