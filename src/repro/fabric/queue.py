"""Per-device admission queues: bounded depth, batched shreds, backpressure.

The paper's software work queue "can have a far greater number of shreds
than the number of GMA X3000 exo-sequencers" (section 3.4) — but not an
*unbounded* number: descriptors live in pinned shared virtual memory, so a
real runtime caps queue depth and pushes back on the producer.  Two
backpressure behaviours are modelled:

* ``AdmissionPolicy.RAISE`` — overflow is a programming error; admission
  raises :class:`~repro.errors.SchedulingError` (the runtime's analogue of
  ``EAGAIN``).
* ``AdmissionPolicy.BLOCK`` — the producing IA32 shred blocks until the
  device drains enough descriptors.  On the simulated timeline this
  serializes the overflow: the batch is split into depth-sized sub-batches
  that the device must drain one after another, so an oversized launch
  pays real (simulated) time instead of overlapping perfectly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence

from ..errors import SchedulingError
from ..exo.shred import ShredDescriptor

#: Default bound on descriptors one admission may leave in flight.
DEFAULT_DEPTH = 1024


class AdmissionPolicy(enum.Enum):
    """What a full queue does to the producer."""

    RAISE = "raise"
    BLOCK = "block"

    @classmethod
    def coerce(cls, value) -> "AdmissionPolicy":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise SchedulingError(
                f"unknown admission policy {value!r}; expected one of "
                f"{[p.value for p in cls]}") from None


@dataclass
class QueueStats:
    """Lifetime accounting for one device's admission queue."""

    admitted: int = 0  # shreds accepted
    batches: int = 0  # admission calls
    sub_batches: int = 0  # drain units handed to the device
    rejected: int = 0  # shreds refused under RAISE
    blocked_batches: int = 0  # admissions that had to serialize under BLOCK
    peak_depth: int = 0  # largest number of descriptors in flight at once


class DeviceWorkQueue:
    """Bounded admission control in front of one fabric device.

    The queue does not *hold* shreds across regions — every CHI construct
    drains to completion — it bounds how many descriptors one admission
    may put in flight, and converts overflow into either an error or
    serialized sub-batches (see :class:`AdmissionPolicy`).
    """

    def __init__(self, depth: int = DEFAULT_DEPTH,
                 policy: AdmissionPolicy = AdmissionPolicy.RAISE,
                 name: str = "queue"):
        if depth < 1:
            raise SchedulingError(f"queue depth must be >= 1, got {depth}")
        self.depth = depth
        self.policy = AdmissionPolicy.coerce(policy)
        self.name = name
        self.stats = QueueStats()

    def admit(self, shreds: Sequence[ShredDescriptor],
              ) -> List[List[ShredDescriptor]]:
        """Admit one batch; returns the sub-batches to drain in order.

        A batch within ``depth`` comes back as a single sub-batch (full
        overlap on the device).  An oversized batch raises under
        ``RAISE``; under ``BLOCK`` it is split into depth-sized sub-batches
        the device drains back to back, which is where the producer's
        blocked time shows up on the simulated timeline.
        """
        shreds = list(shreds)
        self.stats.batches += 1
        if not shreds:
            return []
        if len(shreds) > self.depth:
            if self.policy is AdmissionPolicy.RAISE:
                self.stats.rejected += len(shreds)
                raise SchedulingError(
                    f"work queue overflow on {self.name!r}: batch of "
                    f"{len(shreds)} shreds exceeds depth {self.depth} "
                    f"(admission policy {self.policy.value!r})")
            self.stats.blocked_batches += 1
        batches = [shreds[i:i + self.depth]
                   for i in range(0, len(shreds), self.depth)]
        self.stats.admitted += len(shreds)
        self.stats.sub_batches += len(batches)
        self.stats.peak_depth = max(self.stats.peak_depth,
                                    min(len(shreds), self.depth))
        return batches
