"""The heterogeneous device fabric.

The paper's CHI runtime "schedules shreds on heterogeneous targets"; one
GMA X3000 was all the prototype hardware offered, but nothing in the
programming model limits it to a single accelerator.  This package is the
generalization: a :class:`~repro.fabric.registry.DeviceRegistry` of
pluggable compute backends (N GMA devices, the IA32 sequencer class, a
legacy driver-managed GPGPU stack), per-device bounded
:class:`~repro.fabric.queue.DeviceWorkQueue` admission with backpressure,
and an event-driven
:class:`~repro.fabric.dispatcher.WorkStealingDispatcher` that plays the
role section 5.3 sketches for the runtime's ongoing work: "whenever a
sequencer completes its assigned work it requests additional work of the
runtime" — here as stealing from the most-loaded peer's queue.

The fabric is what :class:`~repro.chi.runtime.ChiRuntime` routes
``target(ISA)`` constructs through, and what later sharding/batching work
scales out.
"""

from .device import (
    DeviceRunReport,
    FabricDevice,
    FabricRunResult,
    GmaFabricDevice,
    GpgpuFabricDevice,
    Ia32FabricDevice,
)
from .dispatcher import (
    DispatchOutcome,
    WorkItem,
    WorkStealingDispatcher,
    dependency_groups,
    work_stealing_partition,
)
from .queue import AdmissionPolicy, DeviceWorkQueue, QueueStats
from .registry import DeviceRegistry
from .workers import (
    ProcessDeviceWorker,
    ProcessGmaFabricDevice,
    ProcessWorkerPool,
    WorkerConfig,
)

__all__ = [
    "AdmissionPolicy",
    "DeviceRegistry",
    "DeviceRunReport",
    "DeviceWorkQueue",
    "DispatchOutcome",
    "FabricDevice",
    "FabricRunResult",
    "GmaFabricDevice",
    "GpgpuFabricDevice",
    "Ia32FabricDevice",
    "ProcessDeviceWorker",
    "ProcessGmaFabricDevice",
    "ProcessWorkerPool",
    "QueueStats",
    "WorkItem",
    "WorkStealingDispatcher",
    "WorkerConfig",
    "dependency_groups",
    "work_stealing_partition",
]
