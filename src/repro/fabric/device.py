"""Pluggable compute backends behind the fabric registry.

Three device classes, mirroring the heterogeneity the paper argues for:

* :class:`GmaFabricDevice` — one GMA X3000 instance sharing the process's
  virtual address space (the EXO model; N of these give an N-accelerator
  fabric, the configuration related SVM work treats as the baseline);
* :class:`Ia32FabricDevice` — the OS-managed IA32 sequencer class, which
  participates in cooperative scheduling but consumes cost-model
  :class:`~repro.cpu.ia32.CpuWork` rather than accelerator shreds;
* :class:`GpgpuFabricDevice` — the Figure 1(a) legacy stack: the same
  silicon driven through :class:`~repro.gpgpu.driver.GpgpuDriver`, with
  its own address space, explicit copies and per-call kernel transitions.
  Registering it alongside EXO devices makes the cost of the
  loosely-coupled model directly visible inside one fabric.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..cpu.ia32 import CpuExecution, CpuWork, Ia32Cpu
from ..errors import SchedulingError
from ..exo.shred import ShredDescriptor
from ..gma.device import GmaDevice
from ..gma.eu import DeviceTiming
from ..gma.firmware import GmaRunResult
from ..gma.timing import GmaTimingConfig
from ..memory.address_space import AddressSpace
from .queue import DeviceWorkQueue

#: Static per-instruction cycle estimate used for load balancing before a
#: shred has executed (issue plus a typical exposed-latency share).
_EST_CYCLES_PER_INSTRUCTION = 4.0


def estimate_gma_seconds(config: GmaTimingConfig,
                         shreds: Sequence[ShredDescriptor]) -> float:
    """Pre-execution cost estimate for a GMA batch.

    Shared by the in-process and worker-process device fronts so dispatch
    balancing is identical regardless of where the device lives.
    """
    instructions = sum(len(s.program.instructions) for s in shreds)
    compute = (instructions * _EST_CYCLES_PER_INSTRUCTION
               / config.num_sequencers)
    surfaces = {id(s): s for shred in shreds
                for s in shred.surfaces.values()}
    traffic = sum(s.nbytes for s in surfaces.values())
    bandwidth = traffic / config.mem_bytes_per_cycle
    return config.seconds(max(compute, bandwidth))


@dataclass
class DeviceRunReport:
    """What one device did with one admitted batch."""

    device: str
    isa: str
    seconds: float  # simulated drain time, serialized over sub-batches
    shreds: int
    results: List[GmaRunResult] = field(default_factory=list)
    config: Optional[GmaTimingConfig] = None  # None for non-GMA backends
    copy_seconds: float = 0.0  # explicit transfer time (driver backends)
    sub_batches: int = 1
    #: Host wall-clock seconds the drain took (measured by
    #: :func:`~repro.fabric.dispatcher.drain_devices`; 0.0 when the batch
    #: ran outside it).  Distinct from ``seconds``, which is simulated.
    wall_seconds: float = 0.0
    #: ``"serial"``, ``"parallel"`` or ``"process"`` — how
    #: :func:`~repro.fabric.dispatcher.drain_devices` ran this drain
    #: (empty when the batch ran outside it).
    drain_mode: str = ""
    #: Fabric worker process that drained the batch (empty for in-process
    #: devices); lets traces group rows per worker.
    worker: str = ""

    def merged_result(self) -> GmaRunResult:
        """One :class:`~repro.gma.firmware.GmaRunResult` for the batch.

        Multiple sub-batches (blocking admission) drained back to back, so
        the merged timing offsets each sub-batch by its predecessors'
        cycles and sums the totals.
        """
        if len(self.results) == 1:
            return self.results[0]
        merged = GmaRunResult()
        timing = DeviceTiming(compute_cycles=0.0, bandwidth_cycles=0.0,
                              sampler_cycles=0.0)
        offset = 0.0
        for result in self.results:
            merged.runs.extend(result.runs)
            merged.shreds_executed += result.shreds_executed
            merged.instructions += result.instructions
            merged.bytes_read += result.bytes_read
            merged.bytes_written += result.bytes_written
            merged.atr_events += result.atr_events
            merged.ceh_events += result.ceh_events
            merged.spawned_shreds += result.spawned_shreds
            merged.pages_prepared += result.pages_prepared
            merged.gang_lanes_retired += result.gang_lanes_retired
            merged.scalar_fallbacks += result.scalar_fallbacks
            merged.predecode_hits += result.predecode_hits
            merged.predecode_misses += result.predecode_misses
            merged.batched_mem_lanes += result.batched_mem_lanes
            merged.batched_translations += result.batched_translations
            merged.tlb_vector_hits += result.tlb_vector_hits
            merged.fused_blocks_retired += result.fused_blocks_retired
            merged.trace_chains += result.trace_chains
            merged.fusion_compiles += result.fusion_compiles
            merged.megaops_retired += result.megaops_retired
            merged.megaop_compiles += result.megaop_compiles
            merged.megaop_deopts += result.megaop_deopts
            merged.gang_repacks += result.gang_repacks
            merged.lanes_readmitted += result.lanes_readmitted
            if result.timing is not None:
                for sid, (s, f, eu, slot) in result.timing.spans.items():
                    timing.spans[sid] = (s + offset, f + offset, eu, slot)
                for sid, f in result.timing.finish_times.items():
                    timing.finish_times[sid] = f + offset
                timing.eu_reports.extend(result.timing.eu_reports)
                offset += result.timing.cycles
        timing.compute_cycles = offset
        merged.timing = timing
        return merged


@dataclass
class FabricRunResult:
    """One parallel construct's outcome across several fabric devices.

    Duck-types the aggregate counters of
    :class:`~repro.gma.firmware.GmaRunResult` (so region handles read the
    same either way) while keeping the per-device
    :class:`DeviceRunReport` list for breakdowns and tracing.  Devices
    ran concurrently, so :attr:`seconds` is the max drain time, not the
    sum.
    """

    reports: List[DeviceRunReport] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        return max((r.seconds for r in self.reports), default=0.0)

    @property
    def runs(self) -> list:
        return [run for report in self.reports
                for result in report.results for run in result.runs]

    def _sum(self, attr: str) -> int:
        return sum(getattr(result, attr) for report in self.reports
                   for result in report.results)

    @property
    def shreds_executed(self) -> int:
        return self._sum("shreds_executed")

    @property
    def instructions(self) -> int:
        return self._sum("instructions")

    @property
    def bytes_read(self) -> int:
        return self._sum("bytes_read")

    @property
    def bytes_written(self) -> int:
        return self._sum("bytes_written")

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def atr_events(self) -> int:
        return self._sum("atr_events")

    @property
    def ceh_events(self) -> int:
        return self._sum("ceh_events")

    @property
    def spawned_shreds(self) -> int:
        return self._sum("spawned_shreds")

    @property
    def pages_prepared(self) -> int:
        return self._sum("pages_prepared")

    @property
    def gang_lanes_retired(self) -> int:
        return self._sum("gang_lanes_retired")

    @property
    def scalar_fallbacks(self) -> int:
        return self._sum("scalar_fallbacks")

    @property
    def predecode_hits(self) -> int:
        return self._sum("predecode_hits")

    @property
    def predecode_misses(self) -> int:
        return self._sum("predecode_misses")

    @property
    def batched_mem_lanes(self) -> int:
        return self._sum("batched_mem_lanes")

    @property
    def batched_translations(self) -> int:
        return self._sum("batched_translations")

    @property
    def tlb_vector_hits(self) -> int:
        return self._sum("tlb_vector_hits")

    @property
    def fused_blocks_retired(self) -> int:
        return self._sum("fused_blocks_retired")

    @property
    def trace_chains(self) -> int:
        return self._sum("trace_chains")

    @property
    def fusion_compiles(self) -> int:
        return self._sum("fusion_compiles")

    @property
    def megaops_retired(self) -> int:
        return self._sum("megaops_retired")

    @property
    def megaop_compiles(self) -> int:
        return self._sum("megaop_compiles")

    @property
    def megaop_deopts(self) -> int:
        return self._sum("megaop_deopts")

    @property
    def gang_repacks(self) -> int:
        return self._sum("gang_repacks")

    @property
    def lanes_readmitted(self) -> int:
        return self._sum("lanes_readmitted")

    @property
    def gang_residency_pct(self) -> float:
        """Share of retired instructions that retired while ganged."""
        instructions = self.instructions
        if not instructions:
            return 0.0
        return 100.0 * self.gang_lanes_retired / instructions

    def report_for(self, device: str) -> Optional[DeviceRunReport]:
        for report in self.reports:
            if report.device == device:
                return report
        return None


class FabricDevice(abc.ABC):
    """One registered compute backend: an ISA, capacity, and a queue."""

    #: Whether the backend executes accelerator shred descriptors (the
    #: IA32 sequencer class participates in the fabric but consumes
    #: cost-model work instead).
    executes_shreds: bool = True

    def __init__(self, name: str, isa: str, capacity: int,
                 queue: Optional[DeviceWorkQueue] = None):
        self.name = name
        self.isa = isa
        self.capacity = capacity
        self.queue = queue or DeviceWorkQueue(name=name)

    @abc.abstractmethod
    def estimate_seconds(self, shreds: Sequence[ShredDescriptor]) -> float:
        """Pre-execution cost estimate for dispatch balancing."""

    @abc.abstractmethod
    def run_shreds(self, shreds: Sequence[ShredDescriptor]) -> DeviceRunReport:
        """Admit the batch through the queue and drain it."""

    def describe(self) -> str:
        return (f"{self.name}: ISA {self.isa}, capacity {self.capacity}, "
                f"queue depth {self.queue.depth} "
                f"({self.queue.policy.value})")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"


class GmaFabricDevice(FabricDevice):
    """One GMA X3000 instance in the shared virtual address space."""

    def __init__(self, name: str, device: GmaDevice,
                 queue: Optional[DeviceWorkQueue] = None):
        super().__init__(name, device.ISA, device.config.num_sequencers,
                         queue=queue)
        self.gma = device

    @property
    def config(self) -> GmaTimingConfig:
        return self.gma.config

    def estimate_seconds(self, shreds: Sequence[ShredDescriptor]) -> float:
        return estimate_gma_seconds(self.gma.config, shreds)

    def run_shreds(self, shreds: Sequence[ShredDescriptor]) -> DeviceRunReport:
        batches = self.queue.admit(shreds)
        results = []
        seconds = 0.0
        for batch in batches:
            result = self.gma.run(batch)
            results.append(result)
            seconds += self.gma.config.seconds(result.cycles)
        return DeviceRunReport(
            device=self.name, isa=self.isa, seconds=seconds,
            shreds=len(shreds), results=results, config=self.gma.config,
            sub_batches=max(len(batches), 1))


class Ia32FabricDevice(FabricDevice):
    """The OS-managed sequencer class, as a fabric citizen.

    It advertises timing and capacity like any device, and the dispatcher
    schedules cost-model work onto it (the cooperative scheduling of
    section 5.3); it cannot consume accelerator shred descriptors.
    """

    executes_shreds = False

    def __init__(self, name: str, cpu: Ia32Cpu,
                 queue: Optional[DeviceWorkQueue] = None):
        super().__init__(name, "IA32", cpu.config.num_cores, queue=queue)
        self.cpu = cpu

    def estimate_seconds(self, shreds: Sequence[ShredDescriptor]) -> float:
        raise SchedulingError(
            f"device {self.name!r} is the IA32 sequencer class and cannot "
            f"execute accelerator shreds")

    def run_shreds(self, shreds: Sequence[ShredDescriptor]) -> DeviceRunReport:
        raise SchedulingError(
            f"device {self.name!r} is the IA32 sequencer class and cannot "
            f"execute accelerator shreds")

    def run_work(self, work: CpuWork, fraction: float = 1.0) -> CpuExecution:
        return self.cpu.execute(work, fraction)


class GpgpuFabricDevice(FabricDevice):
    """The legacy driver-managed stack as a fabric backend.

    Every batch pays the Figure 1(a) costs: buffers allocated in the
    driver's private address space, explicit host->device and
    device->host copies for each bound surface, one kernel-mode
    transition per driver call, one synchronous launch per shred.
    ``depends_on`` edges are satisfied trivially because launches are
    serial and the batch arrives in dependency-respecting order.
    """

    def __init__(self, name: str, driver, host_space: AddressSpace,
                 queue: Optional[DeviceWorkQueue] = None):
        super().__init__(name, driver.device.ISA,
                         driver.device.config.num_sequencers, queue=queue)
        self.driver = driver
        self.host_space = host_space
        self._kernel_handles: Dict[int, int] = {}  # id(program) -> handle

    def estimate_seconds(self, shreds: Sequence[ShredDescriptor]) -> float:
        config = self.driver.device.config
        instructions = sum(len(s.program.instructions) for s in shreds)
        compute = config.seconds(instructions * _EST_CYCLES_PER_INSTRUCTION
                                 / config.num_sequencers)
        surfaces = {id(s): s for shred in shreds
                    for s in shred.surfaces.values()}
        traffic = sum(s.nbytes for s in surfaces.values())
        # in and out across address spaces, plus per-call transitions
        copies = 2 * traffic / self.driver._bandwidth.copy_rate
        calls = (2 * len(surfaces) + len(shreds) + 2)
        return compute + copies + calls * self.driver.call_overhead_seconds

    def run_shreds(self, shreds: Sequence[ShredDescriptor]) -> DeviceRunReport:
        batches = self.queue.admit(shreds)
        seconds_before = self.driver.stats.total_seconds
        copies_before = self.driver.stats.copy_seconds
        for batch in batches:
            self._run_batch(batch)
        return DeviceRunReport(
            device=self.name, isa=self.isa,
            seconds=self.driver.stats.total_seconds - seconds_before,
            shreds=len(shreds),
            copy_seconds=self.driver.stats.copy_seconds - copies_before,
            sub_batches=max(len(batches), 1))

    def _run_batch(self, batch: Sequence[ShredDescriptor]) -> None:
        surfaces = {id(s): s for shred in batch
                    for s in shred.surfaces.values()}
        handles = {}
        for key, surf in surfaces.items():
            handle = self.driver.malloc(surf.nbytes, width=surf.width,
                                        height=surf.height, dtype=surf.dtype)
            data = surf.read_linear(self.host_space, 0, surf.nelems)
            self.driver.memcpy_htod(handle, data)
            handles[key] = handle
        for shred in batch:
            kernel = self._kernel_handles.get(id(shred.program))
            if kernel is None:
                kernel = self.driver.load_program(shred.program)
                self._kernel_handles[id(shred.program)] = kernel
            buffers = {name: handles[id(surf)]
                       for name, surf in shred.surfaces.items()}
            self.driver.launch(kernel, grid=[dict(shred.bindings)],
                               buffers=buffers)
        for key, surf in surfaces.items():
            data = self.driver.memcpy_dtoh(handles[key])
            surf.write_linear(self.host_space, 0, data)
            self.driver.free(handles[key])
