"""The device registry: which backends exist and what they can run.

The registry replaces the hardwired single-accelerator check the
reproduction started with: ``target(ISA)`` clauses resolve here, and any
backend advertising the requested ISA (and the ability to execute shred
descriptors) is a scheduling candidate.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List

from ..errors import SchedulingError
from .device import FabricDevice


class DeviceRegistry:
    """Ordered name -> device mapping with ISA-based lookup."""

    def __init__(self, devices: Iterable[FabricDevice] = ()):
        self._devices: Dict[str, FabricDevice] = {}
        for device in devices:
            self.register(device)

    def register(self, device: FabricDevice) -> FabricDevice:
        if device.name in self._devices:
            raise SchedulingError(
                f"device name {device.name!r} already registered")
        self._devices[device.name] = device
        return device

    def get(self, name: str) -> FabricDevice:
        device = self._devices.get(name)
        if device is None:
            raise SchedulingError(
                f"no device named {name!r} in the fabric "
                f"(have {self.names()})")
        return device

    def names(self) -> List[str]:
        return list(self._devices)

    def isas(self) -> List[str]:
        seen = []
        for device in self._devices.values():
            if device.isa not in seen:
                seen.append(device.isa)
        return seen

    def shred_targets(self) -> List[str]:
        """ISAs for which at least one shred-executing device exists."""
        seen = []
        for device in self._devices.values():
            if device.executes_shreds and device.isa not in seen:
                seen.append(device.isa)
        return seen

    def devices_for(self, isa: str,
                    executing: bool = False) -> List[FabricDevice]:
        return [d for d in self._devices.values()
                if d.isa == isa and (d.executes_shreds or not executing)]

    def require(self, isa: str, executing: bool = True) -> List[FabricDevice]:
        """The devices a ``target(isa)`` clause resolves to, or a loud
        :class:`~repro.errors.SchedulingError` naming what exists."""
        devices = self.devices_for(isa, executing=executing)
        if not devices:
            have = self.shred_targets() if executing else self.isas()
            raise SchedulingError(
                f"no accelerator with ISA {isa!r} in the fabric "
                f"(have {have})")
        return devices

    def __iter__(self) -> Iterator[FabricDevice]:
        return iter(self._devices.values())

    def __len__(self) -> int:
        return len(self._devices)

    def __contains__(self, name: str) -> bool:
        return name in self._devices

    def describe(self) -> str:
        return "\n".join(device.describe() for device in self)
