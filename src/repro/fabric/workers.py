"""Cross-process fabric workers: GMA device pools in child processes.

The thread-based parallel drain (PR 3) cannot scale device count — every
interpreter step serializes on the GIL, and ``BENCH_engine.json`` shows
the threaded drain *losing* to serial at 4 devices.  This module shards
devices across worker **processes** instead, while keeping EXO's defining
property: one shared physical memory under everyone.

Architecture
------------

* **Shared frames** — the parent's :class:`~repro.memory.physical.
  PhysicalMemory` is backed by :mod:`multiprocessing.shared_memory`; each
  worker attaches the same segment, so a PFN means the same bytes in
  every process.  Surfaces, register spills, everything data-plane is
  zero-copy.
* **Authoritative paging in the parent** — only the parent's
  :class:`~repro.memory.address_space.AddressSpace` allocates frames.
  Workers run a :class:`MirrorAddressSpace`: launches arrive with a PTE
  snapshot of the surfaces they bind, and any demand fault outside that
  set is proxied back over the pipe (``("fault", ...)``), resolved
  against the real allocator, and the resulting PTE installed in the
  mirror — ATR proxy execution stretched across a process boundary.
* **Cross-process shootdown** — the parent space's shootdown broadcast
  (PR 2) is forwarded over each worker's pipe *synchronously*:
  ``free``/``protect`` does not return until every worker that ever saw
  the space has dropped the PTEs, TLB entries, GTT mirrors and vector
  snapshots for those pages and acked.  A worker that died is skipped —
  it holds no live translations.
* **Staged launch payloads** — each worker owns a small shared-memory
  *staging* segment; a launch's pickled descriptor payload (programs,
  bindings, PTE snapshot) is written there and only a tiny
  ``("launch_shm", seq, nbytes)`` control message crosses the pipe.
  Payloads that outgrow the staging segment fall back to the legacy
  pickled-over-pipe form transparently.  Pickle memoization keeps
  program identity *within* one launch (so ``gang_eligible`` still sees
  one program object); across launches the worker re-interns programs by
  ``(name, source, len)`` so the predecode cache keeps hitting.

Determinism scope: one worker drains one launch at a time (the parent
serializes per-worker conversations), so a single device's results stay
bit-identical to an in-process drain.  Launches on *different* workers
interleave their fault proxies in arrival order at the parent, exactly
as threaded drains interleave them — partition disjoint surfaces across
devices for full determinism, as with ``parallel=True``.

Shreds spawned on-device inside a worker draw ids from a per-worker
band (:data:`WORKER_SHRED_ID_BASE`), so they can never collide with
parent-side descriptor ids — the serving demux depends on that.
"""

from __future__ import annotations

import itertools
import pickle
import threading
from dataclasses import dataclass
from multiprocessing import Pipe, Process
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import FabricError, ReproError
from ..exo.exoskeleton import Exoskeleton
from ..gma.device import GmaDevice
from ..gma.timing import GmaTimingConfig
from ..memory.address_space import AddressSpace
from ..memory.cache import CoherencePoint
from ..memory.physical import PAGE_SHIFT, PhysicalMemory
from .device import DeviceRunReport, FabricDevice, estimate_gma_seconds
from .queue import DeviceWorkQueue

#: First shred id a worker's on-device spawns may use; worker ``i`` owns
#: the band ``[BASE + i*STRIDE, BASE + (i+1)*STRIDE)``.  Parent-side ids
#: count up from 1 and will not reach this in any realistic run.
WORKER_SHRED_ID_BASE = 1 << 40
WORKER_SHRED_ID_STRIDE = 1 << 32

#: Per-worker launch staging segment size.  Generously above any launch
#: payload seen in practice (a 32-shred kernel batch pickles to a few
#: tens of KiB); oversized payloads fall back to the pipe.
STAGING_BYTES = 8 << 20


@dataclass
class WorkerConfig:
    """Everything a child process needs to rebuild its device pool.

    Must stay picklable under the ``spawn`` start method: plain data
    only, no live objects.
    """

    worker: str
    index: int
    shm_name: str
    shm_size: int
    gma_config: GmaTimingConfig
    engine: str = "scalar"
    megaop_threshold: Optional[int] = None
    #: Launch-payload staging segment (``None`` disables staging and
    #: every launch pickles over the pipe).
    staging_name: Optional[str] = None
    staging_size: int = 0


def _safe_exc(exc: BaseException) -> BaseException:
    """An exception safe to ship over the pipe.

    Library exceptions with positional ``__init__`` args sometimes do not
    survive an unpickle on the far side; round-trip locally and fall back
    to a :class:`FabricError` carrying the text when they do not.
    """
    try:
        clone = pickle.loads(pickle.dumps(exc))
        if type(clone) is type(exc):
            return exc
    except Exception:
        pass
    return FabricError(f"{type(exc).__name__}: {exc}")


class MirrorAddressSpace(AddressSpace):
    """A worker's view of a parent-owned address space.

    The page table mirrors the parent's, filled from launch-time PTE
    snapshots and fault proxies; frames are never allocated here.  The
    shootdown handler (:meth:`AddressSpace.invalidate_mappings`) keeps it
    coherent when the parent frees or reprotects pages.
    """

    def __init__(self, physical: PhysicalMemory, conn, key: int):
        super().__init__(physical=physical, demand_paging=True)
        self._conn = conn
        self._key = key
        #: Faults proxied back to the parent over the pipe.
        self.remote_faults = 0

    def handle_fault(self, vaddr: int, write: bool = False) -> None:
        vpn = vaddr >> PAGE_SHIFT
        if self.page_table.entry(vpn):
            return  # raced with a snapshot install
        self._conn.send(("fault", self._key, (int(vaddr),), bool(write)))
        kind, payload = self._conn.recv()
        if kind == "fault-err":
            raise payload
        for got_vpn, pte in payload.items():
            self.install_pte(got_vpn, pte)
        self.remote_faults += 1
        self.faults_serviced += 1


class _WorkerHost:
    """Child-process state: attached memory, mirror spaces, devices."""

    def __init__(self, conn, config: WorkerConfig):
        self.conn = conn
        self.config = config
        self.physical = PhysicalMemory.attach(config.shm_name,
                                              config.shm_size)
        self.staging = None
        if config.staging_name:
            from multiprocessing import shared_memory

            self.staging = shared_memory.SharedMemory(
                name=config.staging_name, create=False)
        self.spaces: Dict[int, MirrorAddressSpace] = {}
        self.exoskeletons: Dict[int, Exoskeleton] = {}
        self.coherences: Dict[int, CoherencePoint] = {}
        self.devices: Dict[str, GmaDevice] = {}
        self.views: Dict[Tuple[int, str], object] = {}
        # (name, source, len) -> Program: stable identity across launches
        # keeps the predecode/fusion caches hot in this process
        self.programs: Dict[tuple, object] = {}

    # -- contexts -----------------------------------------------------------

    def _space(self, key: int) -> MirrorAddressSpace:
        space = self.spaces.get(key)
        if space is None:
            space = MirrorAddressSpace(self.physical, self.conn, key)
            self.spaces[key] = space
            self.exoskeletons[key] = Exoskeleton(space)
            self.coherences[key] = CoherencePoint(coherent=True)
        return space

    def _device(self, name: str, space: MirrorAddressSpace) -> GmaDevice:
        device = self.devices.get(name)
        if device is None:
            device = GmaDevice(
                space, config=self.config.gma_config,
                engine=self.config.engine,
                megaop_threshold=self.config.megaop_threshold)
            self.devices[name] = device
        return device

    def _view(self, key: int, name: str, device: GmaDevice,
              space: MirrorAddressSpace):
        view = self.views.get((key, name))
        if view is None:
            view = device.make_view(space, f"{self.config.worker}:{name}")
            self.views[(key, name)] = view
        return view

    def _intern(self, shreds: List) -> List:
        for shred in shreds:
            program = shred.program
            if not program.source:
                continue  # no stable key; run the fresh copy
            ident = (program.name, program.source,
                     len(program.instructions))
            canonical = self.programs.setdefault(ident, program)
            shred.program = canonical
        return shreds

    # -- operations ---------------------------------------------------------

    def launch(self, seq: int, device_name: str, key: int,
               shreds: List, ptes: Dict[int, int]) -> None:
        try:
            space = self._space(key)
            for vpn, pte in ptes.items():
                space.install_pte(vpn, pte)
            shreds = self._intern(shreds)
            device = self._device(device_name, space)
            view = self._view(key, device_name, device, space)
            device.bind_context(space, self.exoskeletons[key],
                                self.coherences[key], view)
            result = device.run(shreds)
            report = DeviceRunReport(
                device=device_name, isa=device.ISA,
                seconds=device.config.seconds(result.cycles),
                shreds=len(shreds), results=[result],
                config=device.config, sub_batches=1,
                worker=self.config.worker)
        except BaseException as exc:  # ship it; the parent re-raises
            self.conn.send(("error", seq, _safe_exc(exc)))
            return
        self.conn.send(("report", seq, report))

    def launch_shm(self, seq: int, nbytes: int) -> None:
        """A launch whose payload was staged in the shared segment."""
        try:
            if self.staging is None:
                raise FabricError(
                    f"worker {self.config.worker!r} got a staged launch "
                    "but owns no staging segment")
            device_name, key, shreds, ptes = pickle.loads(
                self.staging.buf[:nbytes])
        except BaseException as exc:
            self.conn.send(("error", seq, _safe_exc(exc)))
            return
        self.launch(seq, device_name, key, shreds, ptes)

    def shootdown(self, key: int, vpns: Sequence[int], reason: str) -> int:
        space = self.spaces.get(key)
        if space is None:
            return 0
        return space.invalidate_mappings(vpns, reason=reason)

    def probe_gather(self, seq: int, device_name: str, key: int,
                     vaddrs: Sequence[int], dtype_name: str) -> None:
        """Debug/test hook: gather through the worker's *cached*
        translations only — exactly what a stale-TLB access would see."""
        try:
            view = self.views.get((key, device_name))
            if view is None:
                raise FabricError(
                    f"no view for space {key} on {device_name!r}")
            values = view.gather(np.asarray(vaddrs, dtype=np.int64),
                                 np.dtype(dtype_name))
        except BaseException as exc:
            self.conn.send(("error", seq, _safe_exc(exc)))
            return
        self.conn.send(("probe-ok", seq, np.asarray(values)))

    def translation_count(self, key: int, device_name: str) -> int:
        view = self.views.get((key, device_name))
        if view is None:
            return 0
        return len(view.gtt)

    def close(self) -> None:
        if self.staging is not None:
            staging, self.staging = self.staging, None
            staging.close()
        self.physical.close()


def _worker_main(conn, config: WorkerConfig) -> None:
    """Child process entry point: serve pipe requests until ``exit``."""
    from ..exo import shred as shred_module

    shred_module._shred_ids = itertools.count(
        WORKER_SHRED_ID_BASE + config.index * WORKER_SHRED_ID_STRIDE)
    host = _WorkerHost(conn, config)
    try:
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "launch_shm":
                host.launch_shm(*msg[1:])
            elif op == "launch":
                host.launch(*msg[1:])
            elif op == "shootdown":
                dropped = host.shootdown(*msg[1:])
                conn.send(("shootdown-ack", dropped))
            elif op == "probe":
                host.probe_gather(*msg[1:])
            elif op == "translations":
                conn.send(("translations", host.translation_count(*msg[1:])))
            elif op == "ping":
                conn.send(("pong", msg[1]))
            elif op == "exit":
                break
    except (EOFError, OSError):
        pass  # parent went away; nothing to clean up but ourselves
    finally:
        host.close()
        try:
            conn.close()
        except OSError:
            pass


class ProcessDeviceWorker:
    """Parent-side handle for one child process hosting GMA devices.

    All pipe conversations are serialized by :attr:`lock` — a launch and
    its fault proxies, a shootdown and its ack, never interleave.  Any
    pipe failure raises :class:`~repro.errors.FabricError` rather than
    hanging on a dead child.
    """

    def __init__(self, pool: "ProcessWorkerPool", name: str, index: int,
                 config: WorkerConfig, staging=None):
        self.pool = pool
        self.name = name
        self.index = index
        self.lock = threading.Lock()
        self.launches = 0
        #: The launch-payload staging segment (parent side owns and
        #: unlinks it; the child only attaches).
        self.staging = staging
        self.staged_launches = 0
        self.piped_launches = 0
        self.closed = False
        #: ``closed`` only means "no more messaging" (``_dead`` sets it
        #: when the child dies mid-conversation); teardown of the
        #: process, pipe and staging segment still has to happen once.
        self._torn_down = False
        #: Space keys this worker has translated for (shootdown targets).
        self.seen_keys: set = set()
        parent_conn, child_conn = Pipe(duplex=True)
        self._conn = parent_conn
        self.process = Process(target=_worker_main,
                               args=(child_conn, config),
                               name=name, daemon=True)
        self.process.start()
        child_conn.close()

    # -- pipe plumbing ------------------------------------------------------

    def _dead(self, what: str) -> FabricError:
        self.closed = True
        return FabricError(
            f"fabric worker {self.name!r} died during {what} "
            f"(pid {self.process.pid}, "
            f"exitcode {self.process.exitcode})")

    def _send(self, msg, what: str) -> None:
        if self.closed:
            raise FabricError(f"fabric worker {self.name!r} is closed")
        try:
            self._conn.send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise self._dead(what) from exc

    def _recv(self, what: str):
        try:
            return self._conn.recv()
        except (EOFError, OSError) as exc:
            raise self._dead(what) from exc

    # -- operations ---------------------------------------------------------

    def launch(self, device_name: str, space: AddressSpace,
               shreds: Sequence) -> DeviceRunReport:
        """Run one batch on ``device_name`` in the worker; blocks until
        the report arrives, servicing the batch's fault proxies inline."""
        key = self.pool.space_key(space)
        ptes = self.pool.prepare(space, shreds)
        seq = self.pool.next_seq()
        payload = None
        if self.staging is not None:
            payload = pickle.dumps((device_name, key, list(shreds), ptes),
                                   protocol=pickle.HIGHEST_PROTOCOL)
            if len(payload) > self.staging.size:
                payload = None  # oversized: legacy pipe form
        with self.lock:
            self.seen_keys.add(key)
            if payload is not None:
                # the lock serializes conversations, so the staging
                # buffer is free for reuse once _await returns
                self.staging.buf[:len(payload)] = payload
                self._send(("launch_shm", seq, len(payload)), "launch")
                self.staged_launches += 1
            else:
                self._send(("launch", seq, device_name, key, list(shreds),
                            ptes), "launch")
                self.piped_launches += 1
            report = self._await(seq, "launch")
        self.launches += 1
        return report

    def _await(self, seq: int, what: str):
        while True:
            msg = self._recv(what)
            op = msg[0]
            if op == "fault":
                _, key, vaddrs, write = msg
                self._send(self.pool.resolve_fault(key, vaddrs, write),
                           "fault reply")
            elif op in ("report", "probe-ok") and msg[1] == seq:
                return msg[2]
            elif op == "error" and msg[1] == seq:
                raise msg[2]
            else:
                raise FabricError(
                    f"fabric worker {self.name!r}: unexpected message "
                    f"{op!r} while awaiting {what}")

    def shootdown(self, key: int, vpns: Sequence[int], reason: str) -> int:
        """Synchronously invalidate the worker's translations for
        ``vpns``; returns PTEs dropped.  No-op for spaces the worker has
        never seen and for dead workers (they hold no translations)."""
        if self.closed or key not in self.seen_keys:
            return 0
        with self.lock:
            self._send(("shootdown", key, tuple(int(v) for v in vpns),
                        reason), "shootdown")
            msg = self._recv("shootdown")
            if msg[0] != "shootdown-ack":
                raise FabricError(
                    f"fabric worker {self.name!r}: expected shootdown-ack, "
                    f"got {msg[0]!r}")
            return msg[1]

    def probe_gather(self, device_name: str, space: AddressSpace,
                     vaddrs: Sequence[int], dtype) -> np.ndarray:
        """Gather through the worker's cached translations (tests)."""
        key = self.pool.space_key(space)
        seq = self.pool.next_seq()
        with self.lock:
            self._send(("probe", seq, device_name, key,
                        [int(v) for v in vaddrs], np.dtype(dtype).name),
                       "probe")
            return self._await(seq, "probe")

    def translation_count(self, device_name: str,
                          space: AddressSpace) -> int:
        """How many GTT entries the worker's view holds (tests)."""
        key = self.pool.space_key(space)
        with self.lock:
            self._send(("translations", key, device_name), "translations")
            msg = self._recv("translations")
            return msg[1]

    def ping(self, timeout: float = 5.0) -> bool:
        seq = self.pool.next_seq()
        with self.lock:
            self._send(("ping", seq), "ping")
            if not self._conn.poll(timeout):
                raise self._dead("ping")
            return self._recv("ping") == ("pong", seq)

    def kill(self) -> None:
        """Hard-kill the child (crash-robustness tests)."""
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5.0)

    def close(self, timeout: float = 5.0) -> None:
        if self._torn_down:
            return
        self._torn_down = True
        self.closed = True
        try:
            with self.lock:
                self._conn.send(("exit",))
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout)
        self._conn.close()
        if self.staging is not None:
            staging, self.staging = self.staging, None
            staging.close()
            try:
                staging.unlink()
            except FileNotFoundError:
                pass


class ProcessWorkerPool:
    """N worker processes sharing one shared-memory physical store.

    The pool owns the space registry (space -> small integer key shipped
    over pipes), forwards shootdown broadcasts to every worker that has
    translated for the space, and resolves workers' demand faults against
    the authoritative parent page tables.  It does *not* own the physical
    memory — the platform/server that created both closes them.
    """

    def __init__(self, physical: PhysicalMemory, num_workers: int,
                 gma_config: Optional[GmaTimingConfig] = None,
                 engine: str = "scalar",
                 megaop_threshold: Optional[int] = None,
                 staging_bytes: int = STAGING_BYTES):
        if num_workers < 1:
            raise FabricError(
                f"need at least one fabric worker, got {num_workers}")
        if physical.shm_name is None:
            raise FabricError(
                "process fabric workers need a shared-memory-backed "
                "PhysicalMemory (backing='shared')")
        self.physical = physical
        self.gma_config = gma_config or GmaTimingConfig()
        self.engine = engine
        self.megaop_threshold = megaop_threshold
        self.closed = False
        self._seq = itertools.count(1)
        self._keys: Dict[int, int] = {}      # id(space) -> key
        self._spaces: Dict[int, AddressSpace] = {}  # key -> space
        self._next_key = itertools.count(1)
        self._registry_lock = threading.Lock()
        self.workers = []
        for i in range(num_workers):
            staging = None
            staging_name, staging_size = None, 0
            if staging_bytes > 0:
                from multiprocessing import shared_memory

                staging = shared_memory.SharedMemory(create=True,
                                                     size=staging_bytes)
                staging_name, staging_size = staging.name, staging.size
            self.workers.append(ProcessDeviceWorker(
                self, f"worker{i}", i,
                WorkerConfig(worker=f"worker{i}", index=i,
                             shm_name=physical.shm_name,
                             shm_size=physical.size,
                             gma_config=self.gma_config,
                             engine=engine,
                             megaop_threshold=megaop_threshold,
                             staging_name=staging_name,
                             staging_size=staging_size),
                staging=staging))

    def next_seq(self) -> int:
        return next(self._seq)

    def worker_for(self, index: int) -> ProcessDeviceWorker:
        """Round-robin device placement across the pool."""
        return self.workers[index % len(self.workers)]

    @property
    def staged_launches(self) -> int:
        """Launches whose payload travelled the staging segment."""
        return sum(w.staged_launches for w in self.workers)

    @property
    def piped_launches(self) -> int:
        """Launches that fell back to the pickled-over-pipe form."""
        return sum(w.piped_launches for w in self.workers)

    # -- space registry ------------------------------------------------------

    def adopt_space(self, space: AddressSpace) -> int:
        """Register ``space`` with the pool; its shootdown broadcasts are
        forwarded to workers from now on.  Idempotent."""
        with self._registry_lock:
            key = self._keys.get(id(space))
            if key is None:
                if space.physical is not self.physical:
                    raise FabricError(
                        "space is not backed by the pool's shared "
                        "physical memory")
                key = next(self._next_key)
                self._keys[id(space)] = key
                self._spaces[key] = space
                space.add_shootdown_listener(
                    lambda vpns, reason, _key=key:
                        self._broadcast_shootdown(_key, vpns, reason))
            return key

    def space_key(self, space: AddressSpace) -> int:
        return self.adopt_space(space)

    def _broadcast_shootdown(self, key: int, vpns: Sequence[int],
                             reason: str) -> None:
        """Forward a local shootdown to every worker, synchronously: the
        triggering ``free``/``protect`` returns only after all acks."""
        for worker in self.workers:
            try:
                worker.shootdown(key, vpns, reason)
            except FabricError:
                pass  # a dead worker holds no live translations

    # -- fault service -------------------------------------------------------

    def prepare(self, space: AddressSpace, shreds: Sequence,
                ) -> Dict[int, int]:
        """Eagerly map every bound surface page and snapshot its PTE.

        This is the launch-time half of cross-process ATR: the worker's
        ``_prepare_surfaces`` then transcodes from its mirror table with
        zero pipe round trips.  Pages are only demand-mapped when the
        space does demand paging, matching in-process semantics.
        """
        ptes: Dict[int, int] = {}
        seen: set = set()
        for shred in shreds:
            for surf in shred.surfaces.values():
                if id(surf) in seen:
                    continue
                seen.add(id(surf))
                first = surf.base >> PAGE_SHIFT
                last = (surf.base + surf.nbytes - 1) >> PAGE_SHIFT
                for vpn in range(first, last + 1):
                    if vpn in ptes:
                        continue
                    if (not space.page_table.entry(vpn)
                            and space.demand_paging):
                        space.handle_fault(vpn << PAGE_SHIFT, write=True)
                    pte = space.page_table.entry(vpn)
                    if pte:
                        ptes[vpn] = pte
        return ptes

    def resolve_fault(self, key: int, vaddrs: Sequence[int],
                      write: bool) -> tuple:
        """Service one worker's demand-fault proxy; returns the reply
        message (``fault-ok`` with a PTE snapshot, or ``fault-err``)."""
        space = self._spaces.get(key)
        if space is None:
            return ("fault-err",
                    FabricError(f"unknown space key {key} in fault proxy"))
        try:
            vpns = []
            for vaddr in vaddrs:
                space.translate(int(vaddr), write=bool(write))
                vpns.append(int(vaddr) >> PAGE_SHIFT)
            return ("fault-ok", space.pte_snapshot(vpns))
        except ReproError as exc:
            return ("fault-err", _safe_exc(exc))

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        for worker in self.workers:
            worker.close()

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ProcessGmaFabricDevice(FabricDevice):
    """A GMA device hosted in a worker process, as a fabric citizen.

    Registers like :class:`~repro.fabric.device.GmaFabricDevice` and
    reports through the same :class:`DeviceRunReport` shape; the drain
    itself happens in the worker, so N of these on N workers actually
    run concurrently — no GIL in common.
    """

    def __init__(self, name: str, worker: ProcessDeviceWorker,
                 space: AddressSpace, config: GmaTimingConfig,
                 queue: Optional[DeviceWorkQueue] = None):
        super().__init__(name, GmaDevice.ISA, config.num_sequencers,
                         queue=queue)
        self.worker = worker
        self.space = space
        self.config = config
        #: No in-process device behind this proxy (``None`` tells the
        #: runtime's ATR-counter pass to skip it).
        self.gma = None

    def estimate_seconds(self, shreds: Sequence) -> float:
        return estimate_gma_seconds(self.config, shreds)

    def run_shreds(self, shreds: Sequence) -> DeviceRunReport:
        batches = self.queue.admit(shreds)
        results: List = []
        seconds = 0.0
        for batch in batches:
            report = self.worker.launch(self.name, self.space, batch)
            results.extend(report.results)
            seconds += report.seconds
        return DeviceRunReport(
            device=self.name, isa=self.isa, seconds=seconds,
            shreds=len(shreds), results=results, config=self.config,
            sub_batches=max(len(batches), 1), worker=self.worker.name)
