"""Command-line toolchain: compile, run and inspect CHI fat binaries.

Three entry points mirror the workflow of Figure 4:

* ``chicc program.c -o program.fatbin`` — the CHI compiler: lex/parse/
  check the pragma-extended C, assemble every ``__asm``/``__dsl`` block,
  emit a fat binary;
* ``chirun program.fatbin`` (or a ``.c`` directly) — load the fat binary
  and execute it on a freshly simulated EXO platform;
* ``chidump program.fatbin`` — list the multi-ISA code sections and
  disassemble them.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .chi.fatbinary import FatBinary
from .chi.frontend.driver import CompiledProgram, compile_source
from .chi.frontend.parser import parse
from .chi.frontend import lower, sema
from .chi.platform import ExoPlatform
from .chi.runtime import ChiRuntime
from .errors import ReproError
from .gma.device import GmaDevice
from .isa import predecode
from .isa.disassembler import disassemble


def _load(path: Path) -> CompiledProgram:
    """A CompiledProgram from either a .c source or a .fatbin image."""
    if path.suffix == ".fatbin":
        fat = FatBinary.deserialize(path.read_bytes())
        if not fat.host_source:
            raise ReproError(
                f"{path} carries no host code section; cannot execute")
        unit = parse(fat.host_source)
        sema.check(unit)
        # re-lower against a scratch binary so AsmBlock nodes carry their
        # section ids, then keep the original's sections
        rebuilt = lower.lower(unit, name=fat.name)
        if sorted(rebuilt.sections) != sorted(fat.sections):
            raise ReproError(
                f"{path}: host source and code sections disagree")
        return CompiledProgram(unit=unit, fatbinary=fat, name=fat.name)
    return compile_source(path.read_text(), name=path.stem)


def chicc(argv=None) -> int:
    """The CHI compiler driver."""
    parser_ = argparse.ArgumentParser(
        prog="chicc", description="Compile a CHI C program to a fat binary.")
    parser_.add_argument("source", type=Path)
    parser_.add_argument("-o", "--output", type=Path, default=None)
    parser_.add_argument("--sections", action="store_true",
                         help="list the generated code sections")
    args = parser_.parse_args(argv)
    try:
        program = compile_source(args.source.read_text(),
                                 name=args.source.stem)
    except ReproError as exc:
        print(f"chicc: {exc}", file=sys.stderr)
        return 1
    output = args.output or args.source.with_suffix(".fatbin")
    output.write_bytes(program.fatbinary.serialize())
    print(f"{args.source} -> {output} "
          f"({len(program.fatbinary.sections)} accelerator section(s))")
    if args.sections:
        for section in program.fatbinary.sections.values():
            print(f"  [{section.ident}] {section.isa:8s} {section.name} "
                  f"({len(section.blob)} bytes)")
    return 0


def chirun(argv=None) -> int:
    """Execute a compiled CHI program on a simulated EXO platform."""
    parser_ = argparse.ArgumentParser(
        prog="chirun", description="Run a CHI fat binary (or .c source).")
    parser_.add_argument("image", type=Path, nargs="?", default=None)
    parser_.add_argument("--stats", action="store_true",
                         help="print runtime statistics after execution")
    parser_.add_argument("--gma-devices", type=int, default=1, metavar="N",
                         help="simulate an N-accelerator fabric (default 1)")
    parser_.add_argument("--engine", choices=GmaDevice.ENGINES,
                         default="scalar",
                         help="GMA execution engine: scalar interpretation "
                              "or gang-vectorized batching (default scalar)")
    parser_.add_argument("--parallel-fabric", action="store_true",
                         help="drain multi-device regions on host worker "
                              "threads (same results, less wall-clock)")
    parser_.add_argument("--schedule", default=None, metavar="SPEC",
                         help="schedule transform applied to every "
                              "parallel region's program: 'auto' tunes "
                              "per program against the timing model, or "
                              "give an explicit spec like "
                              "'unroll4+stage_mem' (steps: unroll[N], "
                              "split[N], stage_mem, reorder, "
                              "replace_avg, replace_mad)")
    parser_.add_argument("--megaop-threshold", type=int, default=None,
                         metavar="N",
                         help="chain traversals of one hot cycle before "
                              "the megaop engine promotes it to a single "
                              "composed numpy expression (default 8; "
                              "only meaningful with --engine megaop)")
    parser_.add_argument("--fabric-workers", type=int, default=0,
                         metavar="N",
                         help="host the GMA devices on N worker processes "
                              "over shared-memory physical frames; drains "
                              "run genuinely concurrently (no shared GIL). "
                              "0 = in-process devices (default)")
    parser_.add_argument("--serve", action="store_true",
                         help="instead of running an image, start the "
                              "multi-tenant serving demo: two tenants "
                              "replay a mixed-kernel trace through an "
                              "ExoServer and per-tenant stats print")
    args = parser_.parse_args(argv)
    if args.serve:
        from .serving.demo import run_serving_demo
        try:
            server = run_serving_demo(
                devices=max(args.gma_devices, 1),
                engine=args.engine if args.engine != "scalar" else "gang",
                fabric_workers=args.fabric_workers)
        except ReproError as exc:
            print(f"chirun: {exc}", file=sys.stderr)
            return 1
        if args.stats:
            stats = server.runtime_stats()
            print(f"[chirun] sessions={stats.sessions_opened} "
                  f"admitted={stats.launches_admitted} "
                  f"rejected={stats.launches_rejected} "
                  f"gangs_coalesced={stats.gangs_coalesced} "
                  f"coalesced_lanes={stats.coalesced_lanes} "
                  f"gang_lanes={stats.gang_lanes_retired} "
                  f"scalar_fallbacks={stats.scalar_fallbacks}",
                  file=sys.stderr)
        return 0
    if args.image is None:
        parser_.error("an image is required unless --serve is given")
    platform = None
    try:
        platform = ExoPlatform(num_gma_devices=args.gma_devices,
                               gma_engine=args.engine,
                               fabric_workers=args.fabric_workers,
                               megaop_threshold=args.megaop_threshold,
                               schedule=args.schedule)
        runtime = ChiRuntime(platform,
                             parallel_fabric=args.parallel_fabric)
        program = _load(args.image)
        result = program.run(runtime=runtime)
    except ReproError as exc:
        print(f"chirun: {exc}", file=sys.stderr)
        return 1
    finally:
        if platform is not None:
            platform.close()
    sys.stdout.write(result.output)
    if args.stats:
        stats = result.runtime.stats
        print(f"[chirun] regions={stats.regions} shreds={stats.shreds} "
              f"gma={stats.gma_seconds * 1e6:.1f}us "
              f"cpu={stats.cpu_seconds * 1e6:.1f}us "
              f"copied={stats.bytes_copied}B", file=sys.stderr)
        for name in sorted(stats.device_seconds):
            print(f"[chirun]   {name}: "
                  f"{stats.device_seconds[name] * 1e6:.1f}us busy, "
                  f"{stats.device_shreds.get(name, 0)} shreds",
                  file=sys.stderr)
        if args.schedule is not None:
            print(f"[chirun] schedule={stats.schedule_name or 'baseline'} "
                  f"applied={stats.schedules_applied} "
                  f"tuner_trials={stats.tuner_trials}",
                  file=sys.stderr)
        if args.engine != "scalar":
            total = stats.predecode_hits + stats.predecode_misses
            rate = stats.predecode_hits / total if total else 0.0
            print(f"[chirun] engine={args.engine} "
                  f"gang_lanes={stats.gang_lanes_retired} "
                  f"scalar_fallbacks={stats.scalar_fallbacks} "
                  f"gang_residency={stats.gang_residency_pct:.1f}% "
                  f"decode_cache={stats.predecode_hits}/{total} "
                  f"({rate:.0%} hit) "
                  f"batched_mem={stats.batched_mem_lanes} "
                  f"vec_translate={stats.batched_translations}",
                  file=sys.stderr)
            if stats.gang_repacks:
                print(f"[chirun] repack merges={stats.gang_repacks} "
                      f"lanes_readmitted={stats.lanes_readmitted}",
                      file=sys.stderr)
            cache = predecode.CACHE.stats()
            print(f"[chirun] predecode_cache entries={cache['entries']} "
                  f"hits={cache['hits']} misses={cache['misses']} "
                  f"evictions={cache['evictions']} "
                  f"fused_blocks={cache['fused_blocks']} "
                  f"megaops={cache['megaops']}",
                  file=sys.stderr)
        if args.engine in ("fused", "megaop"):
            print(f"[chirun] fusion blocks_retired="
                  f"{stats.fused_blocks_retired} "
                  f"trace_chains={stats.trace_chains} "
                  f"compiles={stats.fusion_compiles}",
                  file=sys.stderr)
        if args.engine == "megaop":
            print(f"[chirun] megaop retired={stats.megaops_retired} "
                  f"compiles={stats.megaop_compiles} "
                  f"deopts={stats.megaop_deopts}",
                  file=sys.stderr)
    value = result.exit_value
    return int(value) if isinstance(value, (int, float)) else 0


def chidump(argv=None) -> int:
    """Inspect a fat binary: sections, sizes, disassembly."""
    parser_ = argparse.ArgumentParser(
        prog="chidump", description="Disassemble a CHI fat binary.")
    parser_.add_argument("image", type=Path)
    parser_.add_argument("--no-disassembly", action="store_true")
    args = parser_.parse_args(argv)
    try:
        fat = FatBinary.deserialize(args.image.read_bytes())
    except (ReproError, OSError) as exc:
        print(f"chidump: {exc}", file=sys.stderr)
        return 1
    print(f"fat binary {fat.name!r}: ISAs {fat.isas()}, "
          f"{len(fat.sections)} code section(s), "
          f"{len(fat.host_source)} bytes of host source")
    for section in fat.sections.values():
        print(f"\nsection [{section.ident}] {section.isa} {section.name} "
              f"({len(section.blob)} bytes)")
        if not args.no_disassembly:
            program = fat.program(section.ident)
            for line in disassemble(program).splitlines():
                print(f"    {line}")
    return 0
