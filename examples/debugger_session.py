"""Source-level debugging of an exo-sequencer shred (paper section 4.5).

Sets breakpoints by label and source line in a GMA assembly block, runs to
them, single-steps, and examines vector/predicate register state — the
commands the enhanced Intel Debugger added for the GMA X3000.

Run:  python examples/debugger_session.py
"""

import numpy as np

from repro import ChiDebugger, ChiRuntime, DataType, ExoPlatform, Surface

#: A small reduction kernel with a loop (so there is somewhere to stop):
#: sums SRC[0..n) into ACC[0].
SUM_ASM = """
    mov.1.dw vr1 = 0          # index
    mov.1.f  vr2 = 0.0        # accumulator
loop:
    ld.16.dw vr3 = (SRC, vr1, 0)
    hadd.16.f vr4 = vr3
    add.1.f vr2 = vr2, vr4
    add.1.dw vr1 = vr1, 16
    cmp.lt.1.dw p1 = vr1, n
    br p1, loop
    st.1.dw (ACC, 0, 0) = vr2
    end
"""


def main() -> None:
    rt = ChiRuntime(ExoPlatform())
    space = rt.platform.space
    n = 64
    src = Surface.alloc(space, "SRC", n, 1, DataType.DW)
    acc = Surface.alloc(space, "ACC", 1, 1, DataType.DW)
    values = np.arange(1, n + 1)
    src.upload(rt.platform.host, values.reshape(1, n))

    section = rt.compile_asm(SUM_ASM, name="sum-reduce")
    debugger = ChiDebugger(rt)
    session = debugger.debug(section, bindings={"n": n},
                             shared={"SRC": src, "ACC": acc})

    # break at the loop head (by label) and watch the accumulator grow
    ip = session.break_at("loop")
    print(f"breakpoint set at instruction {ip} (label 'loop')")
    partials = []
    while True:
        stop = session.cont()
        if stop.reason.value == "done":
            break
        partials.append(float(session.read_vreg(2)[0]))
    print(f"accumulator at each loop head: {partials}")
    # stops: loop entry (acc 0), then after iterations 1..3 (the 4th
    # iteration falls through the backward branch, so no further stop)
    expected_partials = [0.0] + [float(values[: 16 * k].sum())
                                 for k in range(1, n // 16)]
    assert partials == expected_partials

    # fresh session: single-step and inspect the neighbourhood
    session2 = debugger.debug(section, bindings={"n": n},
                              shared={"SRC": src, "ACC": acc})
    for _ in range(4):
        stop = session2.step()
    print("\nafter 4 single steps:")
    for line in session2.disassemble_around(context=2):
        print(" ", line)
    print(f"vr1 (index) = {session2.read_vreg(1)[0]:.0f}, "
          f"vr2 (acc) = {session2.read_vreg(2)[0]:.0f}")
    print(f"p1 lanes: {session2.read_pred(1, 4).tolist()}")

    # run to completion and verify the result landed in shared memory
    session2.cont()
    total = acc.download(rt.platform.host)[0, 0]
    assert total == values.sum()
    print(f"\nshred finished; ACC[0] = {total:.0f} "
          f"(expected {values.sum()})")


if __name__ == "__main__":
    main()
    print("\ndebugger_session OK")
