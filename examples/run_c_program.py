"""Compile and run a CHI C program from a file (the paper's Figure 9 by
default) through the bundled front end.

Run:  python examples/run_c_program.py [path/to/program.c]
"""

import sys
from pathlib import Path

from repro.chi.frontend import compile_source


def main() -> None:
    default = Path(__file__).with_name("figure9_cooperative.c")
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else default
    source = path.read_text()

    program = compile_source(source, name=path.stem)
    sections = [(s.ident, s.isa, s.name) for s in
                program.fatbinary.sections.values()]
    print(f"compiled {path.name}: fat binary with sections {sections}")

    result = program.run()
    print("program output:", result.output.strip() or "(none)")
    stats = result.runtime.stats
    print(f"exit value: {result.exit_value}")
    print(f"heterogeneous regions: {stats.regions}, shreds: {stats.shreds}, "
          f"GMA time: {stats.gma_seconds * 1e6:.1f} us")
    if result.exit_value not in (0, None):
        raise SystemExit(int(result.exit_value))


if __name__ == "__main__":
    main()
    print("\nrun_c_program OK")
