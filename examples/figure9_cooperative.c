/* The paper's Figure 9: "Cooperative Execution Code Example which
 * Executes 600 Loop Iterations on GMA X3000 Exo-sequencers and 200 Loop
 * Iterations on the IA32 Sequencer" — adapted only in the loop body
 * (the paper elides it as "...").
 *
 * Each iteration doubles an 8-element chunk of IN into OUT; iterations
 * [0, GMA_iters) run as exo-sequencer shreds under master_nowait while
 * the IA32 sequencer handles [GMA_iters, n) concurrently.
 */
int main() {
    int n = 800;
    int GMA_iters = 600;
    int IN[6400];
    int OUT[6400];
    int i;
    for (i = 0; i < 6400; i++) IN[i] = i % 251;

    int IN_desc = chi_alloc_desc(X3000, IN, CHI_INPUT, 6400, 1);
    int OUT_desc = chi_alloc_desc(X3000, OUT, CHI_OUTPUT, 6400, 1);
    #pragma omp parallel target(X3000) shared(IN, OUT) descriptor(IN_desc, OUT_desc) private(i) master_nowait
    {
        for (i = 0; i < GMA_iters; i++)
        __asm {
            shl.1.dw vr1 = i, 3
            ld.8.dw [vr2..vr9] = (IN, vr1, 0)
            add.8.dw [vr10..vr17] = [vr2..vr9], [vr2..vr9]
            st.8.dw (OUT, vr1, 0) = [vr10..vr17]
            end
        }
    }
    #pragma omp parallel for shared(IN, OUT) private(i)
    {
        for (i = GMA_iters; i < n; i++) {
            int base = i * 8;
            for (int k = 0; k < 8; k++)
                OUT[base + k] = IN[base + k] * 2;
        }
    }
    chi_wait();

    int errors = 0;
    for (i = 0; i < 6400; i++)
        if (OUT[i] != 2 * IN[i]) errors++;
    printf("cooperative regions done, errors=%d\n", errors);
    return errors;
}
