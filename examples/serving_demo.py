"""EXOCHI as a service: two tenants share one accelerator pool.

Starts an :class:`~repro.serving.ExoServer` over two simulated GMA
X3000 devices, opens two tenant sessions — each with its own isolated
address space over the shared physical memory, its own quotas, and a
different fair-share weight — and replays a short mixed-kernel trace
from both concurrently.  Same-kernel launches queued together coalesce
into gangs (watch ``gangs_coalesced``), every output verifies
bit-identical to the kernel reference, and per-tenant stats print at
the end.

Run:  PYTHONPATH=src python examples/serving_demo.py
"""

import tempfile
from pathlib import Path

from repro.perf.trace import export_serving_trace
from repro.serving.demo import run_serving_demo


def main() -> None:
    server = run_serving_demo(requests=8, devices=2, engine="gang")
    stats = server.runtime_stats()
    print(f"engine: gang_lanes={stats.gang_lanes_retired} "
          f"scalar_fallbacks={stats.scalar_fallbacks} "
          f"batched_mem_lanes={stats.batched_mem_lanes}")
    assert stats.gangs_coalesced > 0, "no cross-launch gangs formed"
    assert stats.scalar_fallbacks == 0, "coalescing failed to gang"
    out = Path(tempfile.gettempdir()) / "serving_trace.json"
    count = export_serving_trace(server, out)
    print(f"wrote {count} trace events to {out}")
    print("serving demo OK")


if __name__ == "__main__":
    main()
