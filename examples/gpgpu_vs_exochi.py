"""Figure 1 side by side: the driver-based GPGPU stack vs. EXOCHI.

The same image-doubling workload written against both programming models,
with the data-movement and driver-call costs each one pays.  This is the
paper's section 2 argument in runnable form: "EXO differs from the
loosely-coupled, driver-based approaches by directly exposing the
heterogeneous sequencers to application programs and by supporting a
shared virtual address space amongst these sequencers."

Run:  python examples/gpgpu_vs_exochi.py
"""

import numpy as np

from repro import ChiRuntime, DataType, ExoPlatform, Surface
from repro.gpgpu import GpgpuDriver

N = 4096

DOUBLE = """
    shl.1.dw vr1 = i, 4
    ld.16.dw vr2 = (A, vr1, 0)
    add.16.dw vr3 = vr2, vr2
    st.16.dw (C, vr1, 0) = vr3
    end
"""


def via_driver(data: np.ndarray):
    print("=== Figure 1(a): the driver-based stack ===")
    driver = GpgpuDriver()
    a = driver.malloc(N * 4, width=N, dtype=DataType.DW)   # driver call
    c = driver.malloc(N * 4, width=N, dtype=DataType.DW)   # driver call
    driver.memcpy_htod(a, data)                            # explicit copy
    kernel = driver.load_kernel(DOUBLE, "double")          # driver call
    gma_seconds = driver.launch(
        kernel, [{"i": i} for i in range(N // 16)],
        buffers={"A": a, "C": c})                          # driver call
    result = driver.memcpy_dtoh(c)                         # explicit copy
    stats = driver.stats
    print(f"driver calls: {stats.driver_calls}, copied "
          f"{stats.bytes_host_to_device + stats.bytes_device_to_host} bytes")
    print(f"time: {gma_seconds * 1e6:7.2f} us device + "
          f"{stats.copy_seconds * 1e6:7.2f} us copies + "
          f"{stats.overhead_seconds * 1e6:7.2f} us driver overhead")
    total = gma_seconds + stats.copy_seconds + stats.overhead_seconds
    return result, total


def via_exochi(data: np.ndarray):
    print("\n=== Figure 1(b): EXOCHI ===")
    rt = ChiRuntime(ExoPlatform())
    a = Surface.alloc(rt.platform.space, "A", N, 1, DataType.DW)
    c = Surface.alloc(rt.platform.space, "C", N, 1, DataType.DW)
    a.upload(rt.platform.host, data.reshape(1, N))  # a write, not a copy
    region = rt.parallel(DOUBLE, shared={"A": a, "C": c},
                         private=[{"i": i} for i in range(N // 16)])
    result = c.download(rt.platform.host).reshape(-1)
    print(f"driver calls: 0, bytes copied between address spaces: "
          f"{rt.stats.bytes_copied}")
    print(f"time: {region.gma_seconds * 1e6:7.2f} us device "
          f"(pointers passed through shared virtual memory)")
    return result, region.gma_seconds


def main() -> None:
    data = np.arange(N, dtype=np.float64) % 1000
    driver_result, driver_total = via_driver(data)
    exochi_result, exochi_total = via_exochi(data)
    assert np.array_equal(driver_result, data * 2)
    assert np.array_equal(exochi_result, data * 2)
    print(f"\nsame answer from both stacks; end-to-end "
          f"{driver_total * 1e6:.2f} us (driver) vs "
          f"{exochi_total * 1e6:.2f} us (EXOCHI), "
          f"{driver_total / exochi_total:.1f}x")


if __name__ == "__main__":
    main()
    print("\ngpgpu_vs_exochi OK")
