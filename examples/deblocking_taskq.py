"""H.264-style deblocking with taskq/task producer-consumer dependencies.

Paper section 4.3: "the deblocking algorithm requires macroblocks to be
processed in a particular order; for example, a macroblock will not be
processed until its left and upper neighboring macroblocks have been
completely processed.  Such inter-shred dependency can be easily supported
by the work-queuing extension in CHI."

Each 16x16 macroblock task smooths its block edges against the *already
processed* pixels of its left and upper neighbours (reading a neighbour's
last column/row is a read-after-write dependency on that neighbour's
task), then conditions its own last column/row for its consumers.  The
result is verified against a serial raster-order reference — any schedule
respecting the left/up dependencies must produce the same frame.

Run:  python examples/deblocking_taskq.py
"""

import numpy as np

from repro import ChiRuntime, DataType, ExoPlatform, Surface
from repro.kernels.images import test_image

MB = 16

DEBLOCK_ASM = """
    sub.1.dw vr1 = bx, 1          # left neighbour's last column (clamped)
    sub.1.dw vr2 = by, 1          # upper neighbour's last row (clamped)
    add.1.dw vr3 = bx, 15         # own last column
    add.1.dw vr4 = by, 15         # own last row
    # 1. smooth own first column against the left neighbour's last
    ldblk.1x16.ub vr10 = (FRAME, vr1, by)
    ldblk.1x16.ub vr11 = (FRAME, bx, by)
    avg.16.uw vr12 = vr10, vr11
    stblk.1x16.ub (FRAME, bx, by) = vr12
    # 2. smooth own first row against the upper neighbour's last
    ldblk.16x1.ub vr13 = (FRAME, bx, vr2)
    ldblk.16x1.ub vr14 = (FRAME, bx, by)
    avg.16.uw vr15 = vr13, vr14
    stblk.16x1.ub (FRAME, bx, by) = vr15
    # 3. condition own last column for the right neighbour
    ldblk.1x16.ub vr16 = (FRAME, vr3, by)
    ldblk.1x16.ub vr17 = (FRAME, bx, by)
    avg.16.uw vr18 = vr16, vr17
    stblk.1x16.ub (FRAME, vr3, by) = vr18
    # 4. condition own last row for the neighbour below
    ldblk.16x1.ub vr19 = (FRAME, bx, vr4)
    ldblk.16x1.ub vr20 = (FRAME, bx, by)
    avg.16.uw vr21 = vr19, vr20
    stblk.16x1.ub (FRAME, bx, vr4) = vr21
    end
"""


def reference_deblock(frame: np.ndarray) -> np.ndarray:
    """Raster-order serial deblocking (the dependency-respecting oracle)."""
    out = frame.copy()
    h, w = out.shape

    def avg(a, b):
        return np.floor((a + b + 1) / 2.0)

    for by in range(0, h, MB):
        for bx in range(0, w, MB):
            left = out[by : by + MB, max(bx - 1, 0)]
            out[by : by + MB, bx] = avg(left, out[by : by + MB, bx])
            up = out[max(by - 1, 0), bx : bx + MB]
            out[by, bx : bx + MB] = avg(up, out[by, bx : bx + MB])
            out[by : by + MB, bx + MB - 1] = avg(
                out[by : by + MB, bx + MB - 1], out[by : by + MB, bx])
            out[by + MB - 1, bx : bx + MB] = avg(
                out[by + MB - 1, bx : bx + MB], out[by, bx : bx + MB])
    return out


def main() -> None:
    width, height = 96, 64
    rt = ChiRuntime(ExoPlatform())
    space = rt.platform.space

    frame = Surface.alloc(space, "FRAME", width, height, DataType.UB)
    image = test_image(width, height, seed=21)
    frame.upload(rt.platform.host, image)
    expected = reference_deblock(image)

    section = rt.compile_asm(DEBLOCK_ASM, name="deblock-mb")
    tiles_x, tiles_y = width // MB, height // MB

    handles = {}
    with rt.taskq(target="X3000") as queue:
        # the root shred walks macroblocks, enqueueing one task per MB
        # with left/up dependencies — the paper's wavefront
        for j in range(tiles_y):
            for i in range(tiles_x):
                depends = []
                if i > 0:
                    depends.append(handles[(i - 1, j)])
                if j > 0:
                    depends.append(handles[(i, j - 1)])
                handles[(i, j)] = queue.task(
                    section,
                    captureprivate={"bx": float(i * MB), "by": float(j * MB)},
                    shared={"FRAME": frame},
                    depends=depends,
                )
    result = queue.region.wait()

    got = frame.download(rt.platform.host)
    assert np.array_equal(got, expected), "wavefront result != serial oracle"
    print(f"deblocked {tiles_x}x{tiles_y} macroblocks as "
          f"{result.shreds_executed} dependent tasks")
    print(f"device cycles: {result.cycles:.0f} "
          f"(dependency gating lengthens the critical path); "
          f"instructions: {result.instructions}")
    print("wavefront output matches the serial raster-order reference")


if __name__ == "__main__":
    main()
    print("\ndeblocking_taskq OK")
