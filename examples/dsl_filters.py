"""The CHI domain-specific language for per-pixel filters (section 4.1).

Three classic filters written in the DSL, compiled to GMA X3000 assembly,
executed on the device model and verified against the DSL's own numpy
oracle.  The generated assembly of the first filter is printed so you can
see what the compiler emits.

Run:  python examples/dsl_filters.py
"""

import numpy as np

from repro import ChiRuntime, DataType, ExoPlatform, Surface
from repro.chi.dsl import compile_dsl
from repro.isa import disassemble
from repro.kernels.images import test_image

FILTERS = {
    "box blur": """
        OUT = clamp((SRC[-1,-1] + SRC[0,-1] + SRC[1,-1]
                   + SRC[-1, 0] + SRC[0, 0] + SRC[1, 0]
                   + SRC[-1, 1] + SRC[0, 1] + SRC[1, 1]) / 9 + 0.5, 0, 255)
    """,
    "sobel-ish edges": """
        OUT = clamp(abs(SRC[1,0] - SRC[-1,0])
                  + abs(SRC[0,1] - SRC[0,-1]) + 0.5, 0, 255)
    """,
    "unsharp mask": """
        OUT = clamp(2 * SRC[0,0]
                  - 0.25 * (SRC[-1,0] + SRC[1,0] + SRC[0,-1] + SRC[0,1])
                  - SRC[0,0] * 0 + 0.5, 0, 255)
    """,
}


def main() -> None:
    width = height = 64
    image = test_image(width, height, seed=13)

    for i, (name, text) in enumerate(FILTERS.items()):
        dsl = compile_dsl(text, name=name)
        if i == 0:
            print(f"=== generated assembly for {name!r} "
                  f"({len(dsl.program)} instructions) ===")
            print(disassemble(dsl.program))

        runtime = ChiRuntime(ExoPlatform())
        space = runtime.platform.space
        src = Surface.alloc(space, "SRC", width, height, DataType.UB)
        out = Surface.alloc(space, "OUT", width, height, DataType.UB)
        src.upload(runtime.platform.host, image)

        section = runtime.fatbinary.add_section("X3000", dsl.program, text)
        region = runtime.parallel(
            section, shared={"SRC": src, "OUT": out},
            private=dsl.bindings_for(width, height))

        got = out.download(runtime.platform.host)
        expected = dsl.reference({"SRC": image}, width, height)["OUT"]
        assert np.array_equal(got, expected), f"{name} mismatch"
        print(f"{name:18s}: {region.result.shreds_executed:3d} shreds, "
              f"{region.result.instructions:6d} instructions, verified "
              f"(output mean {got.mean():6.1f} vs input {image.mean():6.1f})")


if __name__ == "__main__":
    main()
    print("\ndsl_filters OK")
