"""Film-mode (3:2 pulldown) detection: GMA shreds + IA32 decision logic.

The FMD kernel's shreds compute per-strip field SADs between frames two
apart on the exo-sequencers; the main IA32 shred then runs the tiny serial
cadence detector over the SAD sequence — exactly the heterogeneous split
the paper's programming model is for.

Run:  python examples/film_mode_detection.py
"""

import numpy as np

from repro import Geometry, kernel_by_abbrev, run_kernel_on_gma


def detect_cadence(window_sads: np.ndarray) -> int:
    """Find the 3:2 pulldown phase from per-window total SADs.

    In a telecined sequence, frames t and t+2 drawn from the same film
    frame produce near-zero field SADs once per 5-frame group; the phase
    of the minimum reveals the cadence alignment.
    """
    if window_sads.size < 5:
        raise ValueError("need at least 5 comparison windows")
    usable = (window_sads.size // 5) * 5
    folded = window_sads[:usable].reshape(-1, 5).mean(axis=0)
    return int(np.argmin(folded))


def main() -> None:
    fmd = kernel_by_abbrev("FMD")
    geom = Geometry(256, 64, frames=14)  # 12 comparison windows
    result = run_kernel_on_gma(fmd, geom, seed=4)

    sads = result.outputs["RESULT"]  # (2 * windows, strips)
    windows = fmd.windows(geom)
    total_per_window = sads.reshape(windows, 2, -1).sum(axis=(1, 2))
    print("per-window field SADs (frames t vs t+2):")
    for w, sad in enumerate(total_per_window):
        bar = "#" * int(40 * sad / total_per_window.max())
        print(f"  window {w:2d}: {sad:12.0f} {bar}")

    phase = detect_cadence(total_per_window)
    print(f"\ndetected 3:2 pulldown phase: {phase} "
          f"(windows with phase {phase} mod 5 compare repeated film frames)")
    # synthetic telecine repeats film frames on a fixed 5-frame cadence:
    # the detected phase must be the global SAD minimum's phase
    assert total_per_window[phase::5].mean() == min(
        total_per_window[k::5].mean() for k in range(5))

    print(f"\nGMA side: {result.shreds} shreds, "
          f"{result.instructions} instructions, "
          f"{result.gma_cycles:.0f} cycles; IA32 side: the detector above")


if __name__ == "__main__":
    main()
    print("\nfilm_mode_detection OK")
