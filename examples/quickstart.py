"""Quickstart: the paper's Figure 6 vector-add, two ways.

First through the CHI C front end (the pragma-extended C of the paper,
nearly verbatim), then through the Python runtime API directly.  Both run
real accelerator shreds on the simulated GMA X3000 with a shared virtual
address space.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AccessMode, ChiRuntime, DataType, ExoPlatform, Surface
from repro.chi.frontend import run_source

FIGURE6_C = r"""
int main() {
    int n = 64;
    int A[64];
    int B[64];
    int C[64];
    int D[64];
    int E[64];
    int F[64];
    int i;
    for (i = 0; i < n; i++) {
        A[i] = i;
        B[i] = i * 2;
        D[i] = i + 1;
        E[i] = i + 2;
    }
    int A_desc = chi_alloc_desc(X3000, A, CHI_INPUT, n, 1);
    int B_desc = chi_alloc_desc(X3000, B, CHI_INPUT, n, 1);
    int C_desc = chi_alloc_desc(X3000, C, CHI_OUTPUT, n, 1);
    #pragma omp parallel target(X3000) shared(A, B, C) descriptor(A_desc, B_desc, C_desc) private(i) master_nowait
    {
        for (i = 0; i < n / 8; i++)
        __asm
        {
            shl.1.w vr1 = i, 3
            ld.8.dw [vr2..vr9] = (A, vr1, 0)
            ld.8.dw [vr10..vr17] = (B, vr1, 0)
            add.8.dw [vr18..vr25] = [vr2..vr9], [vr10..vr17]
            st.8.dw (C, vr1, 0) = [vr18..vr25]
            end
        }
    }
    #pragma omp parallel for shared(D, E, F) private(i)
    {
        for (i = 0; i < n; i++)
            F[i] = D[i] + E[i];
    }
    chi_wait();
    int errors = 0;
    for (i = 0; i < n; i++) {
        if (C[i] != A[i] + B[i]) errors = errors + 1;
        if (F[i] != D[i] + E[i]) errors = errors + 1;
    }
    printf("C[5]=%d F[5]=%d errors=%d\n", C[5], F[5], errors);
    return errors;
}
"""

VECADD_ASM = """
    shl.1.w vr1 = i, 3
    ld.8.dw [vr2..vr9] = (A, vr1, 0)
    ld.8.dw [vr10..vr17] = (B, vr1, 0)
    add.8.dw [vr18..vr25] = [vr2..vr9], [vr10..vr17]
    st.8.dw (C, vr1, 0) = [vr18..vr25]
    end
"""


def via_c_frontend() -> None:
    print("=== Figure 6 through the CHI C front end ===")
    result = run_source(FIGURE6_C, name="figure6")
    print("program output:", result.output.strip())
    stats = result.runtime.stats
    print(f"exit value: {result.exit_value}  |  heterogeneous regions: "
          f"{stats.regions}, shreds: {stats.shreds}")
    fat = result.runtime.fatbinary
    print(f"fat binary sections: "
          f"{[(s.ident, s.isa, s.name) for s in fat.sections.values()]}")
    assert result.exit_value == 0


def via_python_api() -> None:
    print("\n=== The same region through the Python runtime API ===")
    rt = ChiRuntime(ExoPlatform())
    space = rt.platform.space
    n = 64
    a = Surface.alloc(space, "A", n, 1, DataType.DW)
    b = Surface.alloc(space, "B", n, 1, DataType.DW)
    c = Surface.alloc(space, "C", n, 1, DataType.DW)
    a.upload(rt.platform.host, np.arange(n).reshape(1, n))
    b.upload(rt.platform.host, (np.arange(n) * 2).reshape(1, n))

    a_desc = rt.chi_alloc_desc("X3000", a, AccessMode.CHI_INPUT, n, 1)
    b_desc = rt.chi_alloc_desc("X3000", b, AccessMode.CHI_INPUT, n, 1)
    c_desc = rt.chi_alloc_desc("X3000", c, AccessMode.CHI_OUTPUT, n, 1)

    section = rt.compile_asm(VECADD_ASM, name="vecadd")
    region = rt.parallel(
        section,
        shared={"A": a_desc, "B": b_desc, "C": c_desc},
        private=[{"i": i} for i in range(n // 8)],
        master_nowait=True,
    )
    # ... the main IA32 shred is free to work here ...
    result = region.wait()

    got = c.download(rt.platform.host).reshape(-1)
    assert np.array_equal(got, np.arange(n) * 3)
    print(f"shreds executed: {result.shreds_executed}, "
          f"device cycles: {result.cycles:.0f}, "
          f"ATR events: {result.atr_events}")
    print(f"C[:8] = {got[:8].astype(int).tolist()}")


if __name__ == "__main__":
    via_c_frontend()
    via_python_api()
    print("\nquickstart OK")
