"""Cooperative heterogeneous execution and work distribution (section 5.3).

Runs one kernel on the device model, then compares the four Figure 10
partitions — GMA-only, 10% / 25% static splits, the oracle — and the
paper's "ongoing work": dynamic self-scheduling, at several chunk
granularities, showing it converge to the oracle.

Run:  python examples/cooperative_scheduling.py
"""

from repro import Geometry, kernel_by_abbrev
from repro.perf.study import measure_kernel


def show_kernel(abbrev: str, geometry: Geometry) -> None:
    kernel = kernel_by_abbrev(abbrev)
    m = measure_kernel(kernel, geometry)
    base = m.cpu_seconds
    print(f"\n{kernel.name} ({abbrev}) — CC-shared speedup "
          f"{m.speedup:.2f}x, times relative to IA32 alone:")

    rows = [
        m.partition("static", 0.0),
        m.partition("static", 0.10),
        m.partition("static", 0.25),
        m.partition("oracle"),
    ]
    for outcome in rows:
        rel = outcome.total_seconds / base
        overlap = outcome.both_busy_seconds / max(outcome.total_seconds, 1e-30)
        bar = "#" * int(50 * rel)
        print(f"  {outcome.policy:12s} {rel:6.3f}  "
              f"(both busy {100 * overlap:3.0f}% of the time) {bar}")

    gma_only = rows[0].total_seconds
    oracle = rows[-1]
    print(f"  oracle puts {100 * oracle.cpu_fraction:.0f}% of iterations on "
          f"the IA32 sequencer and gains "
          f"{100 * (1 - oracle.total_seconds / gma_only):.0f}% over GMA-only")

    print("  dynamic self-scheduling (work requests at chunk granularity):")
    for chunks in (4, 16, 64, 256):
        outcome = m.partition("dynamic", num_chunks=chunks)
        gap = outcome.total_seconds / oracle.total_seconds - 1
        print(f"    {chunks:4d} chunks: {outcome.total_seconds / base:6.3f} "
              f"({100 * gap:+.1f}% vs oracle, "
              f"{100 * outcome.cpu_fraction:.0f}% on IA32)")


def main() -> None:
    # BOB: the IA32 sequencer is nearly competitive, cooperation pays most
    show_kernel("BOB", Geometry(640, 192))
    # Bicubic: the GMA dominates, cooperation barely helps and a bad
    # static split actively hurts (the paper's partition-3 case)
    show_kernel("Bicubic", Geometry(640, 192))


if __name__ == "__main__":
    main()
    print("\ncooperative_scheduling OK")
