"""Regenerate every table and figure of the paper's evaluation section.

One command, all five artifacts: Table 2, Figure 7, Figure 8, Figure 10
and the section 5.2 flush ablation, plus the section 1 energy story.
(The same measurements back `pytest benchmarks/`, which also asserts the
claims; this script just prints.)

Run:  python examples/paper_tables.py        (~20-30 s)
"""

from repro.perf.energy import format_energy_table
from repro.perf.report import (
    format_figure7,
    format_figure8,
    format_figure10,
    format_flush_ablation,
    format_table2,
)
from repro.perf.study import run_suite


def main() -> None:
    print(format_table2())
    print()
    suite = run_suite()
    print(format_figure7(suite))
    print()
    print(format_figure8(suite))
    print()
    print(format_figure10(suite))
    print()
    print(format_flush_ablation(suite["LinearFilter"]))
    print()
    print(format_energy_table(suite))


if __name__ == "__main__":
    main()
    print("\npaper_tables OK")
