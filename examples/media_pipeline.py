"""A two-stage image pipeline on the EXO platform: smooth then sepia.

This is the workload shape the paper's introduction motivates: production
media processing where each stage is a fork-join parallel region of
accelerator shreds, while the main IA32 shred keeps working under
``master_nowait`` ("the programmer may use the heterogeneous shreds to
process two thirds of an image while using the main IA32 shred to process
the rest of the image in parallel", section 4.2).

Run:  python examples/media_pipeline.py
"""

import numpy as np

from repro import Geometry, kernel_by_abbrev, run_kernel_on_gma
from repro.gma import GmaDevice
from repro.kernels import build_program, allocate_surfaces
from repro.exo import ShredDescriptor
from repro.memory import AddressSpace


def main() -> None:
    geom = Geometry(160, 96)
    space = AddressSpace()
    device = GmaDevice(space)

    # Stage 1: LinearFilter smooths the input image
    smooth = kernel_by_abbrev("LinearFilter")
    result1 = run_kernel_on_gma(smooth, geom, device=device, space=space,
                                seed=11)
    print(f"[stage 1] {smooth.name}: {result1.shreds} shreds, "
          f"{result1.instructions} instructions, "
          f"{result1.gma_cycles:.0f} cycles ({result1.bound}-bound)")

    # Stage 2: SepiaTone ages the smoothed image.  The smoothed output
    # feeds all three colour planes of the sepia stage.
    sepia = kernel_by_abbrev("SepiaTone")
    program = build_program(sepia, geom)
    surfaces = allocate_surfaces(sepia, geom, space)
    smoothed = result1.outputs["OUT"]
    for plane in ("R", "G", "B"):
        surfaces[plane].upload(space, smoothed)

    shreds = [
        ShredDescriptor(program=program, bindings=b, surfaces=surfaces)
        for b in sepia.shred_bindings(geom)
    ]
    result2 = device.run(shreds)
    print(f"[stage 2] {sepia.name}: {result2.shreds_executed} shreds, "
          f"{result2.instructions} instructions, "
          f"{result2.cycles:.0f} cycles")

    out_r = surfaces["OR"].download(space)
    expected, _ = sepia.reference_frame(
        geom, {"R": smoothed, "G": smoothed, "B": smoothed}, {})
    assert np.array_equal(out_r, expected["OR"])
    print(f"pipeline output verified; mean sepia red = {out_r.mean():.1f} "
          f"(input mean {smoothed.mean():.1f})")

    total = result1.gma_cycles + result2.cycles
    print(f"total device time: {total:.0f} cycles "
          f"= {device.config.seconds(total) * 1e6:.1f} us at "
          f"{device.config.frequency / 1e6:.0f} MHz")


if __name__ == "__main__":
    main()
    print("\nmedia_pipeline OK")
