"""The device fabric: one parallel region across N accelerators.

Builds EXO platforms with 1, 2 and 4 GMA X3000 devices — all sharing one
virtual address space, as the EXO model makes cheap — and drains the same
parallel region through the work-stealing dispatcher, then shows the
dispatcher converging to the paper's oracle partition when the IA32
sequencer cooperates (section 5.3).

Run:  python examples/fabric_scaling.py
"""

import numpy as np

from repro import ChiRuntime, DataType, ExoPlatform, Surface
from repro.chi.scheduler import oracle_partition, work_stealing_partition

KERNEL = """
    shl.1.dw vr1 = tid, 3
    ld.8.dw [vr2..vr9] = (A, vr1, 0)
    add.8.dw [vr10..vr17] = [vr2..vr9], [vr2..vr9]
    st.8.dw (C, vr1, 0) = [vr10..vr17]
    end
"""
N = 512  # elements; one shred per 8


def run_region(num_devices: int) -> float:
    rt = ChiRuntime(ExoPlatform(num_gma_devices=num_devices))
    space = rt.platform.space
    a = Surface.alloc(space, "A", N, 1, DataType.DW)
    c = Surface.alloc(space, "C", N, 1, DataType.DW)
    a.upload(rt.platform.host, np.arange(N, dtype=float).reshape(1, N))

    region = rt.parallel(KERNEL, shared={"A": a, "C": c},
                         num_threads=N // 8)
    got = c.download(rt.platform.host).reshape(-1)
    assert np.array_equal(got, np.arange(N) * 2.0), "wrong results"

    print(f"  {num_devices} device(s): {region.gma_seconds * 1e6:7.3f} us", end="")
    if num_devices > 1:
        split = ", ".join(
            f"{name}={rt.stats.device_shreds[name]}"
            for name in sorted(rt.stats.device_shreds))
        print(f"   shreds: {split}")
    else:
        print()
    return region.gma_seconds


def main() -> None:
    print(f"{N // 8}-shred doubling kernel across the fabric:")
    seconds = [run_region(n) for n in (1, 2, 4)]
    assert seconds[1] < seconds[0], "two devices must beat one"
    assert seconds[2] < seconds[1], "four must beat two"
    print(f"  2-device speedup {seconds[0] / seconds[1]:.2f}x, "
          f"4-device {seconds[0] / seconds[2]:.2f}x")

    print("\nIA32 sequencer cooperating via work stealing "
          "(7 us of CPU work vs 2 us of GMA work):")
    oracle = oracle_partition(7e-6, 2e-6)
    for chunks in (4, 16, 64, 256):
        ws = work_stealing_partition(7e-6, 2e-6, chunks)
        gap = ws.total_seconds / oracle.total_seconds - 1
        print(f"  {chunks:4d} chunks: {ws.total_seconds * 1e6:6.3f} us "
              f"({100 * gap:+5.1f}% vs oracle, "
              f"{100 * ws.cpu_fraction:3.0f}% stolen by IA32)")
    final = work_stealing_partition(7e-6, 2e-6, 256)
    assert final.total_seconds <= oracle.total_seconds * 1.05

    print("\nfabric_scaling OK")


if __name__ == "__main__":
    main()
