"""Collaborative Exception Handling in action (paper section 3.3).

Two faults that the GMA X3000 cannot complete on its own:

* a **double-precision vector multiply** — the exo-sequencer has no DP
  hardware, so the instruction is shipped to the IA32 sequencer, emulated
  there in full precision, and the result written back into the shred's
  registers before it resumes (the paper's Figure 2 walk-through);
* an **integer divide by zero** — the default IA32 handler applies a
  saturating SEH-style recovery per excepting lane; we then register a
  custom application-level handler that substitutes a sentinel instead,
  showing the structured-exception-handling hook.

Run:  python examples/exceptions_ceh.py
"""

import numpy as np

from repro import ChiRuntime, DataType, ExoPlatform, Surface
from repro.errors import DivideByZeroFault
from repro.isa.instructions import Effect

DOUBLE_ASM = """
    ld.8.df [vr2..vr9]   = (X, 0, 0)
    mul.8.df [vr10..vr17] = [vr2..vr9], [vr2..vr9]   # DP vector op: faults
    st.8.df (Y, 0, 0) = [vr10..vr17]
    end
"""

DIV_ASM = """
    ld.8.dw [vr2..vr9]   = (A, 0, 0)
    ld.8.dw [vr10..vr17] = (B, 0, 0)
    div.8.dw [vr18..vr25] = [vr2..vr9], [vr10..vr17]  # B has zeros: faults
    st.8.dw (C, 0, 0) = [vr18..vr25]
    end
"""


def double_precision() -> None:
    print("=== double-precision vector op via CEH ===")
    rt = ChiRuntime(ExoPlatform())
    space = rt.platform.space
    x = Surface.alloc(space, "X", 8, 1, DataType.DF)
    y = Surface.alloc(space, "Y", 8, 1, DataType.DF)
    values = np.array([1.5, -2.25, 3.125, 1e10, 0.1, 7.0, -0.5, 2.0])
    x.upload(rt.platform.host, values.reshape(1, 8))

    section = rt.compile_asm(DOUBLE_ASM, name="square-dp")
    region = rt.parallel(section, shared={"X": x, "Y": y}, num_threads=1)
    got = y.download(rt.platform.host).reshape(-1)
    assert np.allclose(got, values * values)
    print(f"CEH round trips: {region.result.ceh_events} "
          f"(the mul.8.df was emulated on the IA32 sequencer)")
    print(f"Y = {got.tolist()}")
    ceh = rt.platform.exoskeleton.ceh.stats
    print(f"exceptions proxied: {ceh.exceptions_proxied}, "
          f"by type: {ceh.by_type}")


def divide_by_zero() -> None:
    print("\n=== divide-by-zero, default and custom handlers ===")
    rt = ChiRuntime(ExoPlatform())
    space = rt.platform.space
    a = Surface.alloc(space, "A", 8, 1, DataType.DW)
    b = Surface.alloc(space, "B", 8, 1, DataType.DW)
    c = Surface.alloc(space, "C", 8, 1, DataType.DW)
    a.upload(rt.platform.host, np.array([[10, 20, 30, 40, 50, 60, 70, 80]]))
    b.upload(rt.platform.host, np.array([[2, 0, 5, 0, 10, 3, 0, 4]]))

    section = rt.compile_asm(DIV_ASM, name="divide")
    rt.parallel(section, shared={"A": a, "B": b, "C": c}, num_threads=1)
    got = c.download(rt.platform.host).reshape(-1).astype(int)
    print(f"default (saturating) recovery: {got.tolist()}")
    assert got[1] == 2**31 - 1  # saturated lane

    # application-level SEH-style handler: zero divisor -> -1 sentinel
    def sentinel_handler(program, ip, ctx, fault) -> Effect:
        instr = program.instructions[ip]
        n = instr.width
        dividend = instr.dtype.wrap(instr.srcs[0].read(ctx, n))
        divisor = instr.dtype.wrap(instr.srcs[1].read(ctx, n))
        safe = np.where(divisor == 0, 1, divisor)
        result = np.where(divisor == 0, -1.0, np.trunc(dividend / safe))
        instr.dsts[0].write(ctx, result, instr.dtype)
        return Effect()

    rt.platform.exoskeleton.ceh.register_handler(
        DivideByZeroFault, sentinel_handler)
    rt.parallel(section, shared={"A": a, "B": b, "C": c}, num_threads=1)
    got = c.download(rt.platform.host).reshape(-1).astype(int)
    print(f"custom sentinel handler:       {got.tolist()}")
    assert got.tolist() == [5, -1, 6, -1, 5, 20, -1, 20]


if __name__ == "__main__":
    double_precision()
    divide_by_zero()
    print("\nexceptions_ceh OK")
